// Crash-recovery property suite for pq::store: whatever happens to the
// bytes — truncation at an arbitrary offset, a flipped bit, an injected
// torn write (the faults-layer crash model), or a kill in the middle of a
// segment compaction — the reader must never crash or fabricate, must
// recover exactly a prefix of the intact stream, and must account for the
// damage in its recovery counters. Every property runs against both
// on-disk formats: raw v1 and delta-coded v2 (where a single flipped bit
// can invalidate a whole delta chain — but only ever by SHRINKING the
// recovered prefix).
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <tuple>

#include "common/rng.h"
#include "faults/fault_plan.h"
#include "store/archive.h"
#include "store/archive_reader.h"
#include "store/compactor.h"
#include "../integration/sharded_harness.h"

namespace pq {
namespace {

namespace fs = std::filesystem;
using harness::TempDir;

core::TimeWindowParams small_params() {
  core::TimeWindowParams p;
  p.m0 = 10;
  p.alpha = 1;
  p.k = 4;
  p.num_windows = 3;
  p.num_ports = 1;
  return p;
}

control::WindowSnapshot synth_snapshot(Timestamp taken_at,
                                       std::uint32_t seed) {
  const auto p = small_params();
  control::WindowSnapshot snap;
  snap.taken_at = taken_at;
  snap.epoch = seed;
  snap.state.resize(p.num_windows);
  for (std::uint32_t w = 0; w < p.num_windows; ++w) {
    snap.state[w].resize(1u << p.k);
    for (std::uint32_t c = seed % 3; c < (1u << p.k); c += 2) {
      auto& cell = snap.state[w][c];
      cell.occupied = true;
      cell.flow = make_flow(seed * 1000 + w * 64 + c);
      cell.cycle_id = seed + w + 1;
    }
  }
  return snap;
}

/// Writes a deterministic single-port archive and returns its directory
/// content: several segments of window + monitor + calibration blocks.
void write_intact_archive(const std::string& dir, std::uint16_t format,
                          faults::TornWriteInjector* injector = nullptr) {
  store::ArchiveOptions opts;
  opts.dir = dir;
  opts.segment_bytes = 4 * 1024;  // several segments
  opts.format_version = format;
  store::ArchiveWriter w(0, small_params(), 8, opts, injector);
  for (std::uint32_t i = 0; i < 30; ++i) {
    const Timestamp t = 50'000 * (i + 1);
    w.on_window_snapshot(0, synth_snapshot(t, i + 1));
    control::MonitorSnapshot mon;
    mon.taken_at = t;
    mon.epoch = i;
    mon.state.entries.resize(4);
    mon.state.entries[i % 4].inc.valid = true;
    mon.state.entries[i % 4].inc.flow = make_flow(i);
    mon.state.entries[i % 4].inc.seq = i + 1;
    w.on_monitor_snapshot(0, mon);
    control::CalibrationRecord cal;
    cal.taken_at = t;
    cal.window_params = small_params();
    cal.monitor_levels = 8;
    cal.z0 = 0.25 + 0.001 * i;
    w.on_calibration(cal);
  }
  w.close();
}

/// True if `prefix` is a leading subsequence of `full` at the block level:
/// the recovered ports/blocks must appear in `full` in the same order with
/// identical LOGICAL bytes, with nothing extra. RecoveredBlock::payload is
/// format-independent, so this also proves v2 decoding fabricates nothing.
bool blocks_are_prefix(const std::map<std::uint32_t, store::RecoveredPort>& a,
                       const std::map<std::uint32_t, store::RecoveredPort>& b) {
  for (const auto& [port, rec] : a) {
    const auto it = b.find(port);
    if (it == b.end()) return false;
    if (rec.blocks.size() > it->second.blocks.size()) return false;
    for (std::size_t i = 0; i < rec.blocks.size(); ++i) {
      const auto& x = rec.blocks[i];
      const auto& y = it->second.blocks[i];
      if (x.kind != y.kind || x.partition != y.partition ||
          x.t_lo != y.t_lo || x.t_hi != y.t_hi || x.payload != y.payload) {
        return false;
      }
    }
  }
  return true;
}

std::vector<std::string> segment_files(const std::string& dir) {
  std::vector<std::string> out;
  for (const auto& port : fs::directory_iterator(dir)) {
    for (const auto& seg : fs::directory_iterator(port.path())) {
      out.push_back(seg.path().string());
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

/// Param: (rng seed, on-disk format version).
class ArchiveRecoveryProperty
    : public ::testing::TestWithParam<std::tuple<int, int>> {
 protected:
  int seed() const { return std::get<0>(GetParam()); }
  std::uint16_t format() const {
    return static_cast<std::uint16_t>(std::get<1>(GetParam()));
  }
};

TEST_P(ArchiveRecoveryProperty, TruncationAlwaysRecoversAValidPrefix) {
  const TempDir intact_dir;
  write_intact_archive(intact_dir.path(), format());
  store::ArchiveReader intact(intact_dir.path());
  ASSERT_EQ(intact.stats().recoveries, 0u);
  const std::uint64_t total_blocks = intact.stats().blocks_recovered;
  ASSERT_GT(total_blocks, 50u);
  const auto files = segment_files(intact_dir.path());
  ASSERT_GT(files.size(), 3u);

  Rng rng(2026 + seed());
  for (int trial = 0; trial < 12; ++trial) {
    const TempDir dir;
    write_intact_archive(dir.path(), format());
    const auto victims = segment_files(dir.path());
    const std::string& victim =
        victims[rng.uniform_below(victims.size())];
    const auto size = fs::file_size(victim);
    const auto cut = rng.uniform_below(size + 1);
    fs::resize_file(victim, cut);

    store::ArchiveReader r(dir.path());  // must not throw
    EXPECT_TRUE(blocks_are_prefix(r.recovered(), intact.recovered()))
        << "trial " << trial << " cut " << victim << " at " << cut;
    EXPECT_LE(r.stats().blocks_recovered, total_blocks);
    if (cut < size) {
      EXPECT_GE(r.stats().recoveries, 1u) << "trial " << trial;
    }
    // Whatever survived still answers queries without throwing.
    if (r.has_port(0)) {
      (void)r.query_time_windows(0, 0, 2'000'000);
      (void)r.query_queue_monitor(0, 500'000);
    }
  }
}

TEST_P(ArchiveRecoveryProperty, BitFlipsNeverEscapeTheScan) {
  const TempDir intact_dir;
  write_intact_archive(intact_dir.path(), format());
  store::ArchiveReader intact(intact_dir.path());

  Rng rng(4093 + seed());
  for (int trial = 0; trial < 12; ++trial) {
    const TempDir dir;
    write_intact_archive(dir.path(), format());
    const auto victims = segment_files(dir.path());
    const std::string& victim =
        victims[rng.uniform_below(victims.size())];
    // Flip one random bit in place.
    std::fstream f(victim,
                   std::ios::binary | std::ios::in | std::ios::out);
    const auto size = fs::file_size(victim);
    const auto pos = rng.uniform_below(size);
    f.seekg(static_cast<std::streamoff>(pos));
    char byte = 0;
    f.read(&byte, 1);
    byte = static_cast<char>(byte ^ (1 << rng.uniform_below(8)));
    f.seekp(static_cast<std::streamoff>(pos));
    f.write(&byte, 1);
    f.close();

    store::ArchiveReader r(dir.path());  // must not throw
    // A flipped bit can only shrink the recovered stream, never change it:
    // either the damaged block (and everything after it in that port) is
    // dropped, or the flip hit the footer/trailer and the segment merely
    // loses its clean-close marker.
    EXPECT_TRUE(blocks_are_prefix(r.recovered(), intact.recovered()))
        << "trial " << trial << " flipped " << victim << " byte " << pos;
    EXPECT_LE(r.stats().blocks_recovered, intact.stats().blocks_recovered);
    if (r.has_port(0)) {
      (void)r.query_time_windows(0, 0, 2'000'000);
    }
  }
}

TEST_P(ArchiveRecoveryProperty, TornWriteInjectorDiesIntoARecoverablePrefix) {
  const TempDir intact_dir;
  write_intact_archive(intact_dir.path(), format());
  store::ArchiveReader intact(intact_dir.path());

  // High tear probability: the writer dies somewhere early in every trial.
  faults::FaultLog log;
  for (int trial = 0; trial < 8; ++trial) {
    faults::TornWriteConfig cfg;
    cfg.probability = 0.05;
    faults::TornWriteInjector injector(cfg, 9000 + 31 * seed() + trial,
                                       &log);
    const TempDir dir;
    write_intact_archive(dir.path(), format(), &injector);
    if (injector.tears_injected() == 0) continue;  // clean run, nothing to do

    store::ArchiveReader r(dir.path());
    EXPECT_TRUE(blocks_are_prefix(r.recovered(), intact.recovered()))
        << "trial " << trial;
    EXPECT_LT(r.stats().blocks_recovered, intact.stats().blocks_recovered)
        << "trial " << trial;
    EXPECT_GE(r.stats().recoveries, 1u) << "trial " << trial;
    if (r.has_port(0)) {
      // The surviving span answers the same queries as the intact archive
      // over the window it still covers: compare against the intact reader
      // restricted to the newest surviving checkpoint.
      (void)r.query_time_windows(0, 0, 2'000'000);
      (void)r.query_queue_monitor(0, 500'000);
    }
  }
  EXPECT_FALSE(log.events().empty());
}

/// Everything compaction promises to preserve, in one comparable bundle:
/// every non-calibration block's logical bytes in order, the effective
/// (newest-wins) calibration, and the answers of both query families at
/// the full horizon.
struct CompactionFingerprint {
  std::vector<store::RecoveredBlock> snapshot_blocks;
  double z0 = 0.0;
  core::FlowCounts windows;
  std::size_t culprits = 0;

  bool operator==(const CompactionFingerprint& o) const {
    if (snapshot_blocks.size() != o.snapshot_blocks.size()) return false;
    for (std::size_t i = 0; i < snapshot_blocks.size(); ++i) {
      const auto& x = snapshot_blocks[i];
      const auto& y = o.snapshot_blocks[i];
      if (x.kind != y.kind || x.partition != y.partition ||
          x.t_lo != y.t_lo || x.t_hi != y.t_hi || x.payload != y.payload) {
        return false;
      }
    }
    return z0 == o.z0 && windows == o.windows && culprits == o.culprits;
  }
};

CompactionFingerprint fingerprint(const store::ArchiveReader& r) {
  CompactionFingerprint fp;
  if (!r.has_port(0)) return fp;
  for (const auto& b : r.recovered().at(0).blocks) {
    if (b.kind != store::BlockKind::kCalibration) fp.snapshot_blocks.push_back(b);
  }
  fp.z0 = r.to_records(0).z0;
  fp.windows = r.query_time_windows(0, 0, 2'000'000);
  fp.culprits = r.query_queue_monitor(0, 500'000).size();
  return fp;
}

TEST_P(ArchiveRecoveryProperty, MidCompactionKillNeverChangesAnAnswer) {
  // A kill at ANY byte of the compaction rewrite must leave the archive
  // answering exactly as before: the tmp-then-rename protocol means every
  // segment is either wholly old or wholly new, and a stale .tmp is
  // invisible. Only superseded calibrations may vanish — never a snapshot,
  // never the effective calibration, never a query answer.
  const TempDir dir;
  write_intact_archive(dir.path(), format());
  store::ArchiveReader before(dir.path());
  const auto want = fingerprint(before);
  ASSERT_GT(want.snapshot_blocks.size(), 50u);

  faults::FaultLog log;
  bool saw_tear = false;
  for (int trial = 0; trial < 8; ++trial) {
    faults::TornWriteConfig cfg;
    cfg.probability = 0.5;  // the rewrite is a handful of large appends
    faults::TornWriteInjector injector(cfg, 777 + 13 * seed() + trial, &log);
    const store::CompactionPolicy policy;  // defaults: keep 1, v2 out
    const auto s = store::compact_port_chain(dir.path(), 0, policy,
                                             &injector);
    if (s.torn_compactions > 0) saw_tear = true;

    store::ArchiveReader after(dir.path());
    EXPECT_TRUE(fingerprint(after) == want)
        << "trial " << trial << (saw_tear ? " (torn)" : " (clean)");
    EXPECT_EQ(after.stats().recoveries, 0u);
    EXPECT_EQ(after.stats().decode_errors, 0u);
  }
  // Finish with an un-faulted pass: still answer-identical, and the stale
  // .tmp from any killed run must not confuse it.
  const store::CompactionPolicy policy;
  (void)store::compact_port_chain(dir.path(), 0, policy);
  store::ArchiveReader final_reader(dir.path());
  EXPECT_TRUE(fingerprint(final_reader) == want);
}

TEST_P(ArchiveRecoveryProperty, CompactingADamagedChainNeverExtendsIt) {
  // Damage ends the recovered horizon; compaction must preserve that
  // boundary exactly — the cold rewrite can never "heal" a torn segment or
  // resurrect blocks past it. (Compaction refuses the whole chain from the
  // first damaged segment on, so here — damage mid-chain — the recovered
  // stream must come through untouched, calibrations included.)
  Rng rng(6007 + seed());
  for (int trial = 0; trial < 6; ++trial) {
    const TempDir dir;
    write_intact_archive(dir.path(), format());
    const auto victims = segment_files(dir.path());
    ASSERT_GT(victims.size(), 3u);
    // Damage an early segment so a suffix of the chain becomes unreachable.
    const std::size_t v = rng.uniform_below(victims.size() - 2);
    const auto size = fs::file_size(victims[v]);
    fs::resize_file(victims[v], rng.uniform_below(size));

    store::ArchiveReader damaged(dir.path());
    const auto damaged_content = damaged.logical_content();

    // Pure recode (no calibration drops): segments ahead of the damage may
    // legitimately be rewritten, so byte-identity of the recovered stream
    // is only promised when nothing is deliberately dropped.
    store::CompactionPolicy policy;
    policy.drop_superseded_calibrations = false;
    const auto s = store::compact_archive(dir.path(), policy);
    EXPECT_GE(s.segments_skipped_damaged, 1u) << "trial " << trial;

    store::ArchiveReader after(dir.path());
    EXPECT_EQ(after.logical_content(), damaged_content)
        << "trial " << trial << " damaged " << victims[v];
    EXPECT_EQ(after.stats().blocks_recovered,
              damaged.stats().blocks_recovered);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, ArchiveRecoveryProperty,
    ::testing::Combine(::testing::Values(0, 1, 2),
                       ::testing::Values(1, 2)),
    [](const ::testing::TestParamInfo<std::tuple<int, int>>& info) {
      return "seed" + std::to_string(std::get<0>(info.param)) + "v" +
             std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace pq
