// pq::store writer/reader unit coverage: clean roundtrips, segment rolling,
// queue policies, fsync policies, footer verification and the byte-match
// with the one-shot records path. The crash/corruption behaviour has its
// own suite (archive_recovery_property_test.cpp).
#include <gtest/gtest.h>

#include <filesystem>

#include "control/register_records.h"
#include "store/archive.h"
#include "store/archive_reader.h"
#include "../integration/sharded_harness.h"

namespace pq {
namespace {

using harness::TempDir;

core::TimeWindowParams test_params() {
  core::TimeWindowParams p;
  p.m0 = 10;
  p.alpha = 1;
  p.k = 4;
  p.num_windows = 3;
  p.num_ports = 1;
  return p;
}

control::WindowSnapshot make_window_snapshot(Timestamp taken_at,
                                             std::uint32_t seed) {
  const auto p = test_params();
  control::WindowSnapshot snap;
  snap.taken_at = taken_at;
  snap.epoch = seed;
  snap.state.resize(p.num_windows);
  for (std::uint32_t w = 0; w < p.num_windows; ++w) {
    snap.state[w].resize(1u << p.k);
    for (std::uint32_t c = 0; c < (1u << p.k); c += 3) {
      auto& cell = snap.state[w][c];
      cell.occupied = true;
      cell.flow.src_ip = seed * 1000 + w * 100 + c;
      cell.flow.dst_ip = 7;
      cell.cycle_id = seed + w;
    }
  }
  return snap;
}

control::MonitorSnapshot make_monitor_snapshot(Timestamp taken_at,
                                               std::uint32_t seed) {
  control::MonitorSnapshot snap;
  snap.taken_at = taken_at;
  snap.epoch = seed;
  snap.state.top = seed % 5;
  snap.state.entries.resize(8);
  for (std::uint32_t i = 0; i < 8; ++i) {
    auto& e = snap.state.entries[i];
    e.inc.valid = true;
    e.inc.flow.src_ip = seed * 10 + i;
    e.inc.seq = seed + i;
  }
  return snap;
}

control::CalibrationRecord make_calibration(Timestamp taken_at, double z0) {
  control::CalibrationRecord cal;
  cal.taken_at = taken_at;
  cal.window_params = test_params();
  cal.monitor_levels = 8;
  cal.z0 = z0;
  return cal;
}

TEST(ArchiveStore, CleanRoundtripPreservesEveryBlock) {
  const TempDir dir;
  store::ArchiveOptions opts;
  opts.dir = dir.path();
  {
    store::ArchiveWriter w(3, test_params(), 8, opts);
    for (std::uint32_t i = 0; i < 5; ++i) {
      const Timestamp t = 100'000 * (i + 1);
      w.on_window_snapshot(0, make_window_snapshot(t, i + 1));
      w.on_monitor_snapshot(0, make_monitor_snapshot(t, i + 1));
      w.on_calibration(make_calibration(t, 0.5 + 0.01 * i));
    }
    w.close();
    EXPECT_EQ(w.stats().blocks_appended, 15u);
    EXPECT_EQ(w.stats().segments_opened, 1u);
    EXPECT_EQ(w.stats().segments_closed, 1u);
    EXPECT_EQ(w.stats().blocks_dropped, 0u);
  }

  store::ArchiveReader r(dir.path());
  ASSERT_TRUE(r.has_port(3));
  EXPECT_EQ(r.ports(), (std::vector<std::uint32_t>{3}));
  EXPECT_EQ(r.stats().footer_hits, 1u);
  EXPECT_EQ(r.stats().recoveries, 0u);
  EXPECT_EQ(r.stats().blocks_recovered, 15u);
  EXPECT_EQ(r.stats().bytes_truncated, 0u);

  const auto records = r.to_records(3);
  ASSERT_EQ(records.window_snapshots.size(), 1u);
  ASSERT_EQ(records.window_snapshots[0].size(), 5u);
  ASSERT_EQ(records.monitor_snapshots[0].size(), 5u);
  // The newest calibration wins.
  EXPECT_DOUBLE_EQ(records.z0, 0.5 + 0.01 * 4);
  // Snapshots decode byte-identically: re-encoding what the reader parsed
  // must match the writer's input encoding.
  for (std::uint32_t i = 0; i < 5; ++i) {
    std::vector<std::uint8_t> want, got;
    control::put_window_snapshot(want,
                                 make_window_snapshot(100'000 * (i + 1), i + 1));
    control::put_window_snapshot(got, records.window_snapshots[0][i]);
    EXPECT_EQ(want, got) << "snapshot " << i;
  }
}

TEST(ArchiveStore, DqCapturesRoundtrip) {
  const TempDir dir;
  store::ArchiveOptions opts;
  opts.dir = dir.path();
  control::DqCapture cap;
  cap.notification.port_prefix = 0;
  cap.notification.victim_flow.src_ip = 0xC0A80001;
  cap.notification.victim_flow.proto = 6;
  cap.notification.enq_timestamp = 1000;
  cap.notification.deq_timestamp = 5000;
  cap.notification.enq_qdepth = 412;
  cap.notification.window_bank = 2;
  cap.notification.monitor_bank = 3;
  cap.windows = make_window_snapshot(5000, 9).state;
  cap.monitor = make_monitor_snapshot(5000, 9).state;
  {
    store::ArchiveWriter w(0, test_params(), 8, opts);
    w.on_dq_capture(0, cap);
    w.close();
  }
  store::ArchiveReader r(dir.path());
  const auto caps = r.dq_captures(0);
  ASSERT_EQ(caps.size(), 1u);
  EXPECT_EQ(caps[0].notification.victim_flow, cap.notification.victim_flow);
  EXPECT_EQ(caps[0].notification.enq_timestamp, 1000u);
  EXPECT_EQ(caps[0].notification.deq_timestamp, 5000u);
  EXPECT_EQ(caps[0].notification.enq_qdepth, 412u);
  // Register states carry no operator==; compare their canonical encodings.
  std::vector<std::uint8_t> want, got;
  control::put_window_snapshot(want, {5000, 0, cap.windows});
  control::put_window_snapshot(got, {5000, 0, caps[0].windows});
  EXPECT_EQ(want, got);
  want.clear();
  got.clear();
  control::put_monitor_snapshot(want, {5000, 0, cap.monitor});
  control::put_monitor_snapshot(got, {5000, 0, caps[0].monitor});
  EXPECT_EQ(want, got);
}

TEST(ArchiveStore, SegmentsRollAtCapacityAndAllCarryFooters) {
  const TempDir dir;
  store::ArchiveOptions opts;
  opts.dir = dir.path();
  opts.segment_bytes = 8 * 1024;  // force several rolls
  opts.fsync = store::FsyncPolicy::kPerSegment;
  // Pin the uncompressed format: this test asserts roll cadence from v1
  // frame sizes. The v2 cadence (delta frames shrink, keyframes reset per
  // segment) has its own test below.
  opts.format_version = store::kFormatVersionV1;
  std::uint64_t appended = 0;
  {
    store::ArchiveWriter w(1, test_params(), 8, opts);
    for (std::uint32_t i = 0; i < 40; ++i) {
      w.on_window_snapshot(0, make_window_snapshot(10'000 * (i + 1), i + 1));
    }
    w.close();
    appended = w.stats().blocks_appended;
    EXPECT_GT(w.stats().segments_opened, 2u);
    EXPECT_EQ(w.stats().segments_opened, w.stats().segments_closed);
    EXPECT_GE(w.stats().fsyncs, w.stats().segments_closed);
  }
  store::ArchiveReader r(dir.path());
  EXPECT_EQ(r.stats().footer_hits, r.stats().segments_opened);
  EXPECT_EQ(r.stats().recoveries, 0u);
  EXPECT_EQ(r.stats().blocks_recovered, appended);
  EXPECT_EQ(r.to_records(1).window_snapshots[0].size(), 40u);
}

TEST(ArchiveStore, V2SegmentsRollWithPerSegmentKeyframes) {
  const TempDir dir;
  store::ArchiveOptions opts;
  opts.dir = dir.path();
  opts.segment_bytes = 4 * 1024;
  opts.fsync = store::FsyncPolicy::kPerSegment;
  std::uint64_t appended = 0;
  std::uint64_t raw_blocks = 0;
  {
    store::ArchiveWriter w(1, test_params(), 8, opts);
    for (std::uint32_t i = 0; i < 40; ++i) {
      w.on_window_snapshot(0, make_window_snapshot(10'000 * (i + 1), i + 1));
    }
    w.close();
    appended = w.stats().blocks_appended;
    raw_blocks = w.stats().blocks_raw;
    EXPECT_GT(w.stats().segments_opened, 2u);
    EXPECT_EQ(w.stats().segments_opened, w.stats().segments_closed);
    // Compression must actually engage...
    EXPECT_GT(w.stats().blocks_delta, 0u);
    EXPECT_GT(w.stats().logical_bytes, w.stats().bytes_appended);
    // ...and every segment must re-key: one raw block per segment minimum,
    // or a torn cold segment could never decode on its own.
    EXPECT_GE(raw_blocks, w.stats().segments_opened);
  }
  store::ArchiveReader r(dir.path());
  EXPECT_EQ(r.stats().footer_hits, r.stats().segments_opened);
  EXPECT_EQ(r.stats().recoveries, 0u);
  EXPECT_EQ(r.stats().decode_errors, 0u);
  EXPECT_EQ(r.stats().blocks_recovered, appended);
  EXPECT_EQ(r.to_records(1).window_snapshots[0].size(), 40u);
  // Every segment advertises the v2 format and a sparse time index.
  for (const auto& seg : r.recovered().at(1).segments) {
    EXPECT_EQ(seg.version, store::kFormatVersionV2);
    EXPECT_TRUE(seg.footer_ok);
    EXPECT_GE(seg.index_samples, 1u);
  }
}

TEST(ArchiveStore, DropNewestPolicyCountsAndBoundsTheQueue) {
  const TempDir dir;
  store::ArchiveOptions opts;
  opts.dir = dir.path();
  // A queue too small for even one frame, and a watermark above it: every
  // block after the first queued one is dropped before any flush fires.
  opts.queue_bytes = 1;
  opts.flush_watermark_bytes = 1u << 30;
  opts.queue = store::QueuePolicy::kDropNewest;
  store::ArchiveWriter w(0, test_params(), 8, opts);
  for (std::uint32_t i = 0; i < 10; ++i) {
    w.on_window_snapshot(0, make_window_snapshot(10'000 * (i + 1), i + 1));
  }
  EXPECT_EQ(w.stats().blocks_dropped, 10u);
  w.close();
  EXPECT_EQ(w.stats().blocks_appended, 0u);
}

TEST(ArchiveStore, BackpressurePolicyLosesNothing) {
  const TempDir dir;
  store::ArchiveOptions opts;
  opts.dir = dir.path();
  opts.queue_bytes = 1;  // every append overflows -> inline flush
  opts.flush_watermark_bytes = 1u << 30;
  opts.fsync = store::FsyncPolicy::kPerBlock;
  store::ArchiveWriter w(0, test_params(), 8, opts);
  for (std::uint32_t i = 0; i < 10; ++i) {
    w.on_window_snapshot(0, make_window_snapshot(10'000 * (i + 1), i + 1));
  }
  w.close();
  EXPECT_EQ(w.stats().blocks_dropped, 0u);
  EXPECT_EQ(w.stats().blocks_appended, 10u);
  EXPECT_GE(w.stats().fsyncs, 10u);
  store::ArchiveReader r(dir.path());
  EXPECT_EQ(r.stats().blocks_recovered, 10u);
}

TEST(ArchiveStore, MissingDirectoryThrowsButEmptyDirReadsEmpty) {
  EXPECT_THROW(store::ArchiveReader("/nonexistent/pq-archive"),
               std::runtime_error);
  const TempDir dir;
  store::ArchiveReader r(dir.path());
  EXPECT_TRUE(r.ports().empty());
  EXPECT_EQ(r.stats().segments_opened, 0u);
}

TEST(ArchiveStore, ArchivedRunMatchesOneShotRecordsBundle) {
  // End to end through a real sharded run: the archive's reconstruction of
  // each shard's records must answer queries identically to the live
  // analysis path that pq_replay --save-records snapshots.
  const auto packets = harness::workload();
  control::ShardedSystem sys(harness::system_config(false));
  const TempDir dir;
  store::Archive archive(harness::harness_archive_options(dir.path()));
  archive.attach(sys.pipeline(), sys.analysis());
  sys.run(packets, 2, 64);
  archive.close();
  ASSERT_GT(archive.stats().blocks_appended, 0u);
  ASSERT_GE(archive.stats().segments_opened,
            static_cast<std::uint64_t>(harness::kPorts));

  store::ArchiveReader reader(dir.path());
  EXPECT_EQ(reader.stats().recoveries, 0u);
  for (std::uint32_t s = 0; s < sys.pipeline().num_shards(); ++s) {
    ASSERT_TRUE(reader.has_port(s)) << "port " << s;
    const auto live = sys.analysis().query_time_windows(s, 2'000'000,
                                                        4'000'000);
    const auto archived = reader.query_time_windows(s, 2'000'000, 4'000'000);
    ASSERT_EQ(live.size(), archived.size()) << "port " << s;
    for (const auto& [flow, n] : live) {
      auto it = archived.find(flow);
      ASSERT_NE(it, archived.end());
      EXPECT_DOUBLE_EQ(n, it->second);
    }
    const auto live_mon = sys.analysis().query_queue_monitor(s, 3'000'000);
    const auto archived_mon = reader.query_queue_monitor(s, 3'000'000);
    ASSERT_EQ(live_mon.size(), archived_mon.size()) << "port " << s;
    for (std::size_t i = 0; i < live_mon.size(); ++i) {
      EXPECT_EQ(live_mon[i].flow, archived_mon[i].flow);
      EXPECT_EQ(live_mon[i].seq, archived_mon[i].seq);
    }
  }
}

}  // namespace
}  // namespace pq
