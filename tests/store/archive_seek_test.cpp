// Differential proof for the sparse time index: for dozens of `as_of`
// horizons — before the first block, past the last, exactly on block
// boundaries, one tick either side of them, and uniformly random — a
// reader cutting with the index must answer byte-identically to a reader
// forced onto the linear every-block path. The on-disk format is a test
// parameter (v1 chains get the same in-memory index as v2), and the
// writer deliberately emits duplicate and clustered timestamps so the
// binary search has ties to get wrong.
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <sstream>
#include <vector>

#include "common/rng.h"
#include "control/register_records.h"
#include "store/archive.h"
#include "store/archive_reader.h"
#include "../integration/sharded_harness.h"

namespace pq {
namespace {

using harness::TempDir;

core::TimeWindowParams test_params() {
  core::TimeWindowParams p;
  p.m0 = 10;
  p.alpha = 1;
  p.k = 4;
  p.num_windows = 3;
  p.num_ports = 1;
  return p;
}

control::WindowSnapshot make_window_snapshot(Timestamp taken_at,
                                             std::uint32_t seed) {
  const auto p = test_params();
  control::WindowSnapshot snap;
  snap.taken_at = taken_at;
  snap.epoch = seed;
  snap.state.resize(p.num_windows);
  for (std::uint32_t w = 0; w < p.num_windows; ++w) {
    snap.state[w].resize(1u << p.k);
    for (std::uint32_t c = 0; c < (1u << p.k); c += 3) {
      auto& cell = snap.state[w][c];
      cell.occupied = true;
      cell.flow.src_ip = seed * 1000 + w * 100 + c;
      cell.flow.dst_ip = 7;
      cell.cycle_id = seed + w;
    }
  }
  return snap;
}

control::MonitorSnapshot make_monitor_snapshot(Timestamp taken_at,
                                               std::uint32_t seed) {
  control::MonitorSnapshot snap;
  snap.taken_at = taken_at;
  snap.epoch = seed;
  snap.state.top = seed % 5;
  snap.state.entries.resize(8);
  for (std::uint32_t i = 0; i < 8; ++i) {
    auto& e = snap.state.entries[i];
    e.inc.valid = true;
    e.inc.flow.src_ip = seed * 10 + i;
    e.inc.seq = seed + i;
  }
  return snap;
}

control::CalibrationRecord make_calibration(Timestamp taken_at, double z0) {
  control::CalibrationRecord cal;
  cal.taken_at = taken_at;
  cal.window_params = test_params();
  cal.monitor_levels = 8;
  cal.z0 = z0;
  return cal;
}

std::string records_bytes(const store::ArchiveReader& r, Timestamp as_of) {
  std::ostringstream os;
  control::write_records(os, r.to_records(0, as_of));
  return os.str();
}

class ArchiveSeek : public ::testing::TestWithParam<int> {
 protected:
  std::uint16_t format() const {
    return static_cast<std::uint16_t>(GetParam());
  }
};

TEST_P(ArchiveSeek, IndexedSeekMatchesFullScanEverywhere) {
  const TempDir dir;
  store::ArchiveOptions opts;
  opts.dir = dir.path();
  opts.segment_bytes = 8 * 1024;  // many segments, many index keyframes
  opts.format_version = format();

  // Clustered, occasionally-repeating timestamps: ~1 in 4 rounds reuses
  // the previous instant, so adjacent blocks share t_hi and the cut's
  // tie-breaking is actually exercised.
  Rng rng(515 + GetParam());
  std::vector<Timestamp> boundaries;
  {
    store::ArchiveWriter w(0, test_params(), 8, opts);
    Timestamp t = 50'000;
    for (std::uint32_t i = 0; i < 90; ++i) {
      if (rng.uniform_below(4) != 0) t += 1'000 + rng.uniform_below(40'000);
      boundaries.push_back(t);
      w.on_window_snapshot(0, make_window_snapshot(t, i + 1));
      if (i % 3 == 0) w.on_monitor_snapshot(0, make_monitor_snapshot(t, i + 1));
      if (i % 10 == 0) w.on_calibration(make_calibration(t, 0.4 + 0.001 * i));
    }
    w.close();
    // v2 compresses, so it rolls fewer segments than v1 at the same cap;
    // either way the index must span multiple segment boundaries.
    ASSERT_GT(w.stats().segments_opened, 2u);
  }

  store::ReaderOptions indexed_opts;
  indexed_opts.seek_index_stride = 4;  // dense samples on a small archive
  store::ArchiveReader indexed(dir.path(), indexed_opts);
  store::ReaderOptions scan_opts;
  scan_opts.use_seek_index = false;
  store::ArchiveReader scan(dir.path(), scan_opts);
  ASSERT_EQ(indexed.stats().blocks_recovered, scan.stats().blocks_recovered);
  ASSERT_EQ(indexed.logical_content(), scan.logical_content());

  const Timestamp first = boundaries.front();
  const Timestamp last = boundaries.back();
  std::vector<Timestamp> horizons = {0, first - 1, first, last, last + 1,
                                     last * 10,
                                     std::numeric_limits<Timestamp>::max()};
  for (int i = 0; i < 50; ++i) {
    const Timestamp b = boundaries[rng.uniform_below(boundaries.size())];
    switch (rng.uniform_below(3)) {
      case 0: horizons.push_back(b); break;             // exactly on a t_hi
      case 1: horizons.push_back(b - 1); break;         // one tick before
      default:                                          // anywhere at all
        horizons.push_back(rng.uniform_below(last + last / 4));
    }
  }

  for (const Timestamp as_of : horizons) {
    SCOPED_TRACE("as_of=" + std::to_string(as_of));
    // The whole records bundle (snapshot streams, layout, effective z0)
    // must serialize to the same bytes...
    EXPECT_EQ(records_bytes(indexed, as_of), records_bytes(scan, as_of));
    // ...and so must the query answers computed over it.
    EXPECT_EQ(indexed.query_time_windows(0, 0, last + 1, 0, as_of),
              scan.query_time_windows(0, 0, last + 1, 0, as_of));
    const auto ci = indexed.query_queue_monitor(0, as_of / 2, 0, as_of);
    const auto cs = scan.query_queue_monitor(0, as_of / 2, 0, as_of);
    ASSERT_EQ(ci.size(), cs.size());
    for (std::size_t k = 0; k < ci.size(); ++k) {
      EXPECT_EQ(ci[k].flow, cs[k].flow);
      EXPECT_EQ(ci[k].level, cs[k].level);
      EXPECT_EQ(ci[k].seq, cs[k].seq);
    }
  }

  // The indexed reader really took the indexed path, and it skipped
  // per-block tests the oracle had to run; the oracle never touched it.
  EXPECT_GT(indexed.seek_stats().seeks, 0u);
  EXPECT_GT(indexed.seek_stats().probes, 0u);
  EXPECT_GT(indexed.seek_stats().blocks_bypassed, 0u);
  EXPECT_EQ(scan.seek_stats().seeks, 0u);
}

INSTANTIATE_TEST_SUITE_P(Formats, ArchiveSeek, ::testing::Values(1, 2),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return "v" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace pq
