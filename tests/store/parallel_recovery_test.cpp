// Determinism proof for the parallel recovery scan: whatever the worker
// count, ArchiveReader must produce byte-identical logical content,
// identical counters, and identical typed decode-error reporting — over a
// many-port archive written under an active torn-write fault plan, and
// over a chain holding a hand-crafted CRC-valid-but-undecodable v2 block
// (the case where "damage" is only visible after the CRC passes).
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <vector>

#include "common/hash.h"
#include "faults/fault_plan.h"
#include "store/archive.h"
#include "store/archive_reader.h"
#include "../integration/sharded_harness.h"

namespace pq {
namespace {

namespace fs = std::filesystem;
using harness::TempDir;

core::TimeWindowParams test_params() {
  core::TimeWindowParams p;
  p.m0 = 10;
  p.alpha = 1;
  p.k = 4;
  p.num_windows = 3;
  p.num_ports = 1;
  return p;
}

control::WindowSnapshot synth_snapshot(Timestamp taken_at,
                                       std::uint32_t seed) {
  const auto p = test_params();
  control::WindowSnapshot snap;
  snap.taken_at = taken_at;
  snap.epoch = seed;
  snap.state.resize(p.num_windows);
  for (std::uint32_t w = 0; w < p.num_windows; ++w) {
    snap.state[w].resize(1u << p.k);
    for (std::uint32_t c = seed % 4; c < (1u << p.k); c += 3) {
      auto& cell = snap.state[w][c];
      cell.occupied = true;
      cell.flow = make_flow(seed * 500 + w * 64 + c);
      cell.cycle_id = seed + w + 1;
    }
  }
  return snap;
}

/// Writes a 6-port archive, each port several segments, with the
/// torn-write injector live on half the ports (so some chains end mid
/// frame and some close cleanly — the merge has both shapes to get wrong).
void write_archive(const std::string& dir, faults::FaultLog& log) {
  faults::TornWriteConfig torn;
  torn.probability = 0.04;
  for (std::uint32_t port = 0; port < 6; ++port) {
    faults::TornWriteInjector injector(torn, 31 + port * 7, &log);
    store::ArchiveOptions opts;
    opts.dir = dir;
    opts.segment_bytes = 4 * 1024;
    opts.format_version = store::kFormatVersionV2;
    store::ArchiveWriter w(port, test_params(), 8, opts,
                           port % 2 == 0 ? &injector : nullptr);
    for (std::uint32_t i = 0; i < 25; ++i) {
      const Timestamp t = 40'000 * (i + 1) + port;
      w.on_window_snapshot(0, synth_snapshot(t, port * 100 + i + 1));
      if (i % 5 == 0) {
        control::CalibrationRecord cal;
        cal.taken_at = t;
        cal.window_params = test_params();
        cal.monitor_levels = 8;
        cal.z0 = 0.3 + 0.002 * i;
        w.on_calibration(cal);
      }
    }
    w.close();
  }
}

/// Everything a scan reports, flattened for equality across worker counts.
struct ScanReport {
  std::vector<std::uint8_t> content;
  store::ReaderStats stats;
  std::vector<std::tuple<std::uint32_t, std::uint8_t, std::uint32_t,
                         std::uint64_t>> decode_errors;  // port, status, seg, ord

  explicit ScanReport(const store::ArchiveReader& r)
      : content(r.logical_content()), stats(r.stats()) {
    for (const auto& [port, rec] : r.recovered()) {
      if (rec.decode_error.status != store::BlockDecodeStatus::kOk) {
        decode_errors.emplace_back(
            port, static_cast<std::uint8_t>(rec.decode_error.status),
            rec.decode_error.segment_index, rec.decode_error.block_ordinal);
      }
    }
  }
};

void expect_identical(const ScanReport& a, const ScanReport& b,
                      const char* what) {
  EXPECT_EQ(a.content, b.content) << what;
  EXPECT_EQ(a.stats.segments_opened, b.stats.segments_opened) << what;
  EXPECT_EQ(a.stats.footer_hits, b.stats.footer_hits) << what;
  EXPECT_EQ(a.stats.recoveries, b.stats.recoveries) << what;
  EXPECT_EQ(a.stats.blocks_recovered, b.stats.blocks_recovered) << what;
  EXPECT_EQ(a.stats.bytes_truncated, b.stats.bytes_truncated) << what;
  EXPECT_EQ(a.stats.decode_errors, b.stats.decode_errors) << what;
  EXPECT_EQ(a.decode_errors, b.decode_errors) << what;
}

std::vector<ScanReport> scan_at_widths(const std::string& dir) {
  std::vector<ScanReport> out;
  for (const unsigned threads : {1u, 2u, 8u}) {
    store::ReaderOptions opts;
    opts.threads = threads;
    out.emplace_back(store::ArchiveReader(dir, opts));
  }
  return out;
}

TEST(ParallelRecovery, WorkerCountNeverChangesTheScanOfATornArchive) {
  const TempDir dir;
  faults::FaultLog log;
  write_archive(dir.path(), log);
  ASSERT_FALSE(log.events().empty()) << "fault plan never fired";

  const auto reports = scan_at_widths(dir.path());
  ASSERT_GT(reports[0].stats.recoveries, 0u) << "no chain was actually torn";
  ASSERT_GT(reports[0].stats.blocks_recovered, 50u);
  expect_identical(reports[0], reports[1], "1 vs 2 workers");
  expect_identical(reports[0], reports[2], "1 vs 8 workers");
}

TEST(ParallelRecovery, TypedDecodeErrorsReportIdenticallyAtEveryWidth) {
  const TempDir dir;
  faults::FaultLog unused;
  write_archive(dir.path(), unused);

  // Hand-craft a CRC-valid-but-undecodable block: pick a cleanly written
  // port, overwrite the SECOND block's v2 encoding tag with garbage and
  // re-seal the frame CRC. Every scan must now end that port's prefix at
  // ordinal 1 with kBadEncodingTag — physical integrity says "fine",
  // logical decoding says "no".
  const std::string seg = store::segment_path(dir.path(), 1, 0);
  std::vector<std::uint8_t> bytes;
  {
    std::ifstream in(seg, std::ios::binary);
    ASSERT_TRUE(in) << seg;
    bytes.assign(std::istreambuf_iterator<char>(in), {});
  }
  store::SegmentScan scan = store::scan_segment_bytes(bytes, 1);
  ASSERT_TRUE(scan.header_ok);
  ASSERT_GT(scan.entries.size(), 1u);
  const store::IndexEntry& victim = scan.entries[1];
  // Frame: magic u32 | kind u8 | partition u32 | t_lo u64 | t_hi u64 |
  // payload_len u32 | payload | crc32 (over magic..payload). The payload's
  // first byte is the v2 encoding tag.
  const std::size_t tag_at = victim.offset + (store::kBlockOverheadBytes - 4);
  const std::size_t crc_at = victim.offset + victim.length - 4;
  bytes[tag_at] = 0x77;  // neither kEncodingRaw nor kEncodingDelta
  const std::uint32_t crc =
      crc32(bytes.data() + victim.offset, victim.length - 4);
  bytes[crc_at + 0] = static_cast<std::uint8_t>(crc >> 24);
  bytes[crc_at + 1] = static_cast<std::uint8_t>(crc >> 16);
  bytes[crc_at + 2] = static_cast<std::uint8_t>(crc >> 8);
  bytes[crc_at + 3] = static_cast<std::uint8_t>(crc);
  {
    std::ofstream out(seg, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
  }

  const auto reports = scan_at_widths(dir.path());
  expect_identical(reports[0], reports[1], "1 vs 2 workers");
  expect_identical(reports[0], reports[2], "1 vs 8 workers");
  for (const auto& rep : reports) {
    EXPECT_GE(rep.stats.decode_errors, 1u);
    bool found = false;
    for (const auto& [port, status, seg_idx, ordinal] : rep.decode_errors) {
      if (port != 1) continue;
      found = true;
      EXPECT_EQ(status, static_cast<std::uint8_t>(
                            store::BlockDecodeStatus::kBadEncodingTag));
      EXPECT_EQ(seg_idx, 0u);
      EXPECT_EQ(ordinal, 1u);
    }
    EXPECT_TRUE(found) << "port 1's typed decode error went unreported";
  }

  // The poisoned port kept exactly the one block before the bad frame.
  store::ArchiveReader r(dir.path());
  ASSERT_TRUE(r.has_port(1));
  EXPECT_EQ(r.recovered().at(1).blocks.size(), 1u);
}

}  // namespace
}  // namespace pq
