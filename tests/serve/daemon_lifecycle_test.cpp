// In-process lifecycle coverage for serve::Daemon: graceful drains lose
// nothing, restarts answer recovered queries byte-equal to the offline
// path, archive output is a deterministic function of the feed (so chaos
// runs are seed-reproducible), retention prunes history, and the fault
// plan loader rejects typos instead of silently neutering a chaos test.
#include "serve/daemon.h"

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <map>
#include <thread>

#include "control/register_records.h"
#include "serve/fault_config.h"
#include "store/archive_reader.h"
#include "wire/trace_io.h"
#include "../integration/sharded_harness.h"

namespace pq::serve {
namespace {

namespace fs = std::filesystem;
using harness::TempDir;

std::vector<wire::TelemetryRecord> feed_records(std::size_t n,
                                                std::uint32_t port) {
  std::vector<wire::TelemetryRecord> recs;
  recs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    wire::TelemetryRecord r;
    r.flow = make_flow(static_cast<std::uint32_t>(1 + i % 40));
    r.egress_port = port;
    r.size_bytes = 120 + static_cast<std::uint32_t>(i % 900);
    r.enq_timestamp = 700 * (i + 1);
    r.deq_timedelta = 350;
    r.enq_qdepth = static_cast<std::uint32_t>(i % 300);
    r.packet_id = i + 1;
    recs.push_back(r);
  }
  return recs;
}

DaemonConfig base_config(const std::string& feed, const std::string& arch) {
  DaemonConfig dc;
  dc.ports = {6};
  dc.pipeline.windows.m0 = 10;
  dc.pipeline.windows.alpha = 1;
  dc.pipeline.windows.k = 6;
  dc.pipeline.windows.num_windows = 3;
  dc.pipeline.monitor.max_depth_cells = 25000;
  dc.feed_path = feed;
  dc.follow = false;  // one pass, then drain — the unit-test lifecycle
  dc.archive_dir = arch;
  dc.watchdog_ms = 0;
  return dc;
}

/// Every regular file under `dir`, keyed by relative path.
std::map<std::string, std::vector<char>> dir_contents(const std::string& dir) {
  std::map<std::string, std::vector<char>> out;
  for (const auto& entry : fs::recursive_directory_iterator(dir)) {
    if (!entry.is_regular_file()) continue;
    std::ifstream in(entry.path(), std::ios::binary);
    std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                            std::istreambuf_iterator<char>());
    out[fs::relative(entry.path(), dir).string()] = std::move(bytes);
  }
  return out;
}

TEST(DaemonLifecycle, GracefulDrainAbsorbsEveryFedRecord) {
  const TempDir dir;
  const std::string feed = dir.path() + "/feed.pqsm";
  const auto recs = feed_records(30000, 6);
  wire::write_stream_file(feed, recs);

  std::atomic<bool> stop{false};
  Daemon daemon(base_config(feed, dir.path() + "/arch"));
  EXPECT_EQ(daemon.run(stop), 0);

  EXPECT_EQ(daemon.supervisor().records_absorbed(), recs.size());
  EXPECT_EQ(daemon.supervisor().shed_total(), 0u);
  EXPECT_EQ(daemon.decode_stats().frames_ok, recs.size());
  EXPECT_EQ(daemon.decode_stats().frames_rejected, 0u);

  // The drain closed the archive cleanly: a trust-nothing scan finds a
  // footer on every segment and truncates nothing.
  store::ArchiveReader reader(dir.path() + "/arch");
  EXPECT_EQ(reader.stats().recoveries, 0u);
  EXPECT_EQ(reader.stats().bytes_truncated, 0u);
  EXPECT_GT(reader.stats().blocks_recovered, 0u);
}

TEST(DaemonLifecycle, StopFlagDrainsInsteadOfDropping) {
  const TempDir dir;
  const std::string feed = dir.path() + "/feed.pqsm";
  const auto recs = feed_records(20000, 6);
  wire::write_stream_file(feed, recs);

  auto dc = base_config(feed, "");
  dc.follow = true;  // would tail forever; the stop flag must end it
  Daemon daemon(std::move(dc));

  std::atomic<bool> stop{false};
  std::thread runner([&] { EXPECT_EQ(daemon.run(stop), 0); });
  // Let it ingest the whole file, then ask for a graceful stop.
  while (daemon.supervisor().records_submitted() < recs.size()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  stop.store(true);
  runner.join();

  // Everything submitted before the stop was absorbed, not dropped.
  EXPECT_EQ(daemon.supervisor().records_absorbed(), recs.size());
  EXPECT_EQ(daemon.supervisor().queue_depth(), 0u);
}

TEST(DaemonLifecycle, RestartAnswersRecoveredQueriesOverTheSocket) {
  const TempDir dir;
  const std::string feed = dir.path() + "/feed.pqsm";
  const std::string arch = dir.path() + "/arch";
  const auto recs = feed_records(30000, 6);
  wire::write_stream_file(feed, recs);

  {
    std::atomic<bool> stop{false};
    Daemon first(base_config(feed, arch));
    ASSERT_EQ(first.run(stop), 0);
  }

  // The offline oracle over the archive the first run left behind.
  store::ArchiveReader reader(arch);
  const auto oracle_records = reader.to_records(0);
  Timestamp horizon = 0;
  for (const auto& part : oracle_records.window_snapshots) {
    for (const auto& snap : part) horizon = std::max(horizon, snap.taken_at);
  }
  ASSERT_GT(horizon, 0u);
  const auto expected =
      control::offline_query_time_windows(oracle_records, 0, 0, horizon);

  // Restart over the same archive with nothing new to ingest, and query
  // the recovered span through the daemon's unix socket.
  auto dc = base_config(dir.path() + "/none.pqsm", arch);
  dc.follow = true;
  dc.query_socket = dir.path() + "/q.sock";
  Daemon second(std::move(dc));
  ASSERT_TRUE(second.recovery().scanned);

  std::atomic<bool> stop{false};
  std::thread runner([&] { EXPECT_EQ(second.run(stop), 0); });

  int fd = -1;
  for (int tries = 0; tries < 200 && fd < 0; ++tries) {
    fd = connect_unix(dir.path() + "/q.sock");
    if (fd < 0) std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_GE(fd, 0);

  control::QueryRequest req;
  req.type = control::QueryType::kTimeWindows;
  req.request_id = 11;
  req.port_prefix = 6;  // the egress port, mapped onto archive prefix 0
  req.t1 = 0;
  req.t2 = horizon;
  ASSERT_TRUE(send_frame(fd, control::encode_request(req)));
  std::vector<std::uint8_t> resp_bytes;
  ASSERT_TRUE(recv_frame(fd, resp_bytes));
  ::close(fd);

  stop.store(true);
  runner.join();

  const control::QueryResponse resp = control::decode_response(resp_bytes);
  EXPECT_EQ(resp.status, control::QueryStatus::kOk);
  EXPECT_EQ(resp.request_id, 11u);
  EXPECT_DOUBLE_EQ(resp.confidence, 1.0);
  EXPECT_EQ(resp.counts, expected);
}

TEST(DaemonLifecycle, ArchiveBytesAreADeterministicFunctionOfTheFeed) {
  const TempDir dir;
  const std::string feed = dir.path() + "/feed.pqsm";
  const auto recs = feed_records(25000, 6);
  wire::write_stream_file(feed, recs);

  // Two independent daemon processes over the same feed — worker batch
  // boundaries differ with scheduling, but absorb_batch split-invariance
  // makes the archives byte-identical anyway.
  for (const char* sub : {"/a", "/b"}) {
    std::atomic<bool> stop{false};
    Daemon d(base_config(feed, dir.path() + sub));
    ASSERT_EQ(d.run(stop), 0);
  }
  const auto a = dir_contents(dir.path() + "/a");
  const auto b = dir_contents(dir.path() + "/b");
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a, b);
}

TEST(DaemonLifecycle, FaultPlanRunsAreSeedReproducible) {
  const TempDir dir;
  const std::string feed = dir.path() + "/feed.pqsm";
  const auto recs = feed_records(25000, 6);
  wire::write_stream_file(feed, recs);

  faults::FaultPlanConfig fcfg;
  std::string error;
  ASSERT_TRUE(parse_fault_config(R"({
    "seed": 11,
    "feed_channel.corrupt_rate": 0.01,
    "feed_channel.garbage_rate": 0.01,
    "trigger_storm.probability": 0.002,
    "trigger_storm.forced_depth_cells": 800,
    "clock_skew.max_abs_skew_ns": 3000
  })",
                                 fcfg, error))
      << error;

  auto run = [&](const char* sub, std::uint64_t seed) {
    auto dc = base_config(feed, dir.path() + sub);
    dc.faults = fcfg;
    dc.faults->seed = seed;
    std::atomic<bool> stop{false};
    Daemon d(std::move(dc));
    EXPECT_EQ(d.run(stop), 0);
    return dir_contents(dir.path() + sub);
  };

  const auto first = run("/s11a", 11);
  const auto second = run("/s11b", 11);
  const auto other = run("/s12", 12);
  ASSERT_FALSE(first.empty());
  // Same plan, same seed -> the same damage, the same archive bytes.
  EXPECT_EQ(first, second);
  // A different seed draws a different schedule somewhere in a 25k-record
  // run with three active injectors.
  EXPECT_NE(first, other);
}

TEST(DaemonLifecycle, RetentionBoundsSegmentCount) {
  const TempDir dir;
  const std::string feed = dir.path() + "/feed.pqsm";
  const auto recs = feed_records(30000, 6);
  wire::write_stream_file(feed, recs);

  auto count_segments = [](const std::string& arch) {
    std::size_t n = 0;
    for (const auto& e : fs::recursive_directory_iterator(arch)) {
      if (e.is_regular_file()) ++n;
    }
    return n;
  };

  auto dc = base_config(feed, dir.path() + "/all");
  dc.archive_segment_bytes = 64 * 1024;  // force frequent rollover
  {
    std::atomic<bool> stop{false};
    Daemon d(std::move(dc));
    ASSERT_EQ(d.run(stop), 0);
  }
  const std::size_t unbounded = count_segments(dir.path() + "/all");
  ASSERT_GT(unbounded, 2u) << "fixture too small to exercise retention";

  auto dc2 = base_config(feed, dir.path() + "/kept");
  dc2.archive_segment_bytes = 64 * 1024;
  dc2.retain_segments = 2;
  {
    std::atomic<bool> stop{false};
    Daemon d(std::move(dc2));
    ASSERT_EQ(d.run(stop), 0);
  }
  const std::size_t kept = count_segments(dir.path() + "/kept");
  EXPECT_LT(kept, unbounded);
  // retain_segments bounds finished segments; the active one rides along.
  EXPECT_LE(kept, 3u);

  // The pruned archive still scans clean and answers queries.
  store::ArchiveReader reader(dir.path() + "/kept");
  EXPECT_GT(reader.stats().blocks_recovered, 0u);
}

TEST(FaultConfig, RejectsTyposAndGarbage) {
  faults::FaultPlanConfig cfg;
  std::string error;

  EXPECT_TRUE(parse_fault_config(R"({"seed": 3})", cfg, error)) << error;
  EXPECT_EQ(cfg.seed, 3u);

  // An unknown key is an error, not a silently-defaulted knob.
  EXPECT_FALSE(
      parse_fault_config(R"({"feed_channel.corupt_rate": 0.5})", cfg, error));
  EXPECT_NE(error.find("corupt_rate"), std::string::npos);

  EXPECT_FALSE(parse_fault_config(R"({"seed": "lots"})", cfg, error));
  EXPECT_FALSE(parse_fault_config(R"({"seed": 1} trailing)", cfg, error));
  EXPECT_FALSE(parse_fault_config("not json at all", cfg, error));

  // Missing file: a clear error, no throw.
  EXPECT_FALSE(load_fault_config("/nonexistent/plan.json", cfg, error));
  EXPECT_FALSE(error.empty());
}

}  // namespace
}  // namespace pq::serve
