// Fuzz/property coverage for the pq_serve ingest edge (serve/feed.h): the
// StreamDecoder must turn ANY byte stream — torn, bit-flipped, stuffed
// with garbage, or lying about its length — into a subset of the original
// records without crashing, without unbounded buffering, and with exact
// accounting. The FeedFaultInjector half proves the chaos schedule is a
// pure function of (seed, byte stream), independent of read chunking.
#include "serve/feed.h"

#include <gtest/gtest.h>

#include <cstring>
#include <random>
#include <vector>

#include "faults/fault_plan.h"
#include "wire/trace_io.h"

namespace pq::serve {
namespace {

std::vector<wire::TelemetryRecord> sample_records(std::size_t n) {
  std::vector<wire::TelemetryRecord> recs;
  recs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    wire::TelemetryRecord r;
    r.flow = make_flow(static_cast<std::uint32_t>(i + 1));
    r.egress_port = static_cast<std::uint32_t>(i % 3);
    r.size_bytes = 64 + static_cast<std::uint32_t>(i % 1400);
    r.enq_timestamp = 1000 * (i + 1);
    r.deq_timedelta = 13 * (i + 1);
    r.enq_qdepth = static_cast<std::uint32_t>(i);
    r.packet_id = i + 1;
    recs.push_back(r);
  }
  return recs;
}

std::vector<std::uint8_t> stream_bytes(
    const std::vector<wire::TelemetryRecord>& recs) {
  std::vector<std::uint8_t> buf;
  for (const auto& r : recs) wire::append_record_frame(buf, r);
  return buf;
}

bool same_record(const wire::TelemetryRecord& a,
                 const wire::TelemetryRecord& b) {
  return a.flow == b.flow && a.egress_port == b.egress_port &&
         a.size_bytes == b.size_bytes && a.enq_timestamp == b.enq_timestamp &&
         a.deq_timedelta == b.deq_timedelta && a.enq_qdepth == b.enq_qdepth &&
         a.packet_id == b.packet_id;
}

/// Every decoded record must appear in `originals`, in order (the CRC
/// guarantees a damaged frame is dropped, never emitted mutated).
void expect_subsequence(const std::vector<wire::TelemetryRecord>& decoded,
                        const std::vector<wire::TelemetryRecord>& originals) {
  std::size_t j = 0;
  for (const auto& d : decoded) {
    while (j < originals.size() && !same_record(originals[j], d)) ++j;
    ASSERT_LT(j, originals.size())
        << "decoded a record that is not in the original stream";
    ++j;
  }
}

TEST(StreamDecoder, ChunkingInvariance) {
  const auto recs = sample_records(200);
  const auto bytes = stream_bytes(recs);

  for (const std::size_t chunk : {std::size_t{1}, std::size_t{7},
                                  std::size_t{61}, std::size_t{1000},
                                  bytes.size()}) {
    StreamDecoder dec;
    std::vector<wire::TelemetryRecord> out;
    for (std::size_t pos = 0; pos < bytes.size(); pos += chunk) {
      const std::size_t n = std::min(chunk, bytes.size() - pos);
      dec.ingest(std::span(bytes).subspan(pos, n), out);
      // The carry buffer can never hold a full frame after compaction.
      EXPECT_LT(dec.pending_bytes(), wire::kRecordFrameBytes);
    }
    ASSERT_EQ(out.size(), recs.size()) << "chunk=" << chunk;
    for (std::size_t i = 0; i < recs.size(); ++i) {
      EXPECT_TRUE(same_record(out[i], recs[i]));
    }
    EXPECT_EQ(dec.stats().frames_ok, recs.size());
    EXPECT_EQ(dec.stats().frames_rejected, 0u);
    EXPECT_EQ(dec.stats().bytes_in, bytes.size());
  }
}

TEST(StreamDecoder, TruncatedTailIsCarriedNotLost) {
  const auto recs = sample_records(10);
  const auto bytes = stream_bytes(recs);

  for (std::size_t cut = 1; cut < wire::kRecordFrameBytes; ++cut) {
    StreamDecoder dec;
    std::vector<wire::TelemetryRecord> out;
    dec.ingest(std::span(bytes).subspan(0, bytes.size() - cut), out);
    EXPECT_EQ(out.size(), recs.size() - 1);
    EXPECT_EQ(dec.pending_bytes(), wire::kRecordFrameBytes - cut);

    // Delivering the missing tail completes the frame.
    dec.ingest(std::span(bytes).subspan(bytes.size() - cut), out);
    EXPECT_EQ(out.size(), recs.size());
    EXPECT_EQ(dec.pending_bytes(), 0u);
  }
}

TEST(StreamDecoder, SingleBitFlipLosesAtMostOneFrame) {
  const auto recs = sample_records(50);
  const auto clean = stream_bytes(recs);

  std::mt19937_64 rng(0xfeedf00d);
  for (int trial = 0; trial < 200; ++trial) {
    auto bytes = clean;
    const std::size_t pos = rng() % bytes.size();
    bytes[pos] ^= static_cast<std::uint8_t>(1u << (rng() % 8));

    StreamDecoder dec;
    std::vector<wire::TelemetryRecord> out;
    dec.ingest(bytes, out);
    // The flipped frame fails its CRC (or its magic, costing a resync);
    // every other frame must survive.
    EXPECT_GE(out.size(), recs.size() - 1);
    EXPECT_LE(out.size(), recs.size());
    expect_subsequence(out, recs);
    EXPECT_EQ(dec.stats().frames_ok + dec.stats().frames_rejected,
              recs.size())
        << "flip at " << pos;
  }
}

TEST(StreamDecoder, OversizedLengthPrefixCannotDriveAllocation) {
  // A frame header claiming a huge payload must be rejected before any
  // buffering happens: magic + lying length + junk, then a clean stream.
  const auto recs = sample_records(5);
  const auto clean = stream_bytes(recs);

  std::vector<std::uint8_t> bytes;
  bytes.push_back(0x50);  // 'PQFR' little-endian magic bytes
  bytes.push_back(0x51);
  bytes.push_back(0x46);
  bytes.push_back(0x52);
  for (int i = 0; i < 4; ++i) bytes.push_back(0xff);  // payload_len ~ 4 GiB
  for (int i = 0; i < 32; ++i) bytes.push_back(0xaa);
  bytes.insert(bytes.end(), clean.begin(), clean.end());

  StreamDecoder dec;
  std::vector<wire::TelemetryRecord> out;
  dec.ingest(bytes, out);
  EXPECT_EQ(out.size(), recs.size());
  EXPECT_GE(dec.stats().frames_rejected, 1u);
  // Bounded memory: carry buffer peaked below input size + one frame, and
  // nothing tried to reserve the claimed 4 GiB.
  EXPECT_LE(dec.stats().buffer_peak, bytes.size());
  EXPECT_LT(dec.pending_bytes(), wire::kRecordFrameBytes);
}

TEST(StreamDecoder, GarbagePrefixIsResynced) {
  const auto recs = sample_records(20);
  const auto clean = stream_bytes(recs);

  std::mt19937_64 rng(42);
  for (const std::size_t junk : {std::size_t{1}, std::size_t{3},
                                 std::size_t{60}, std::size_t{200}}) {
    std::vector<std::uint8_t> bytes;
    for (std::size_t i = 0; i < junk; ++i) {
      // Avoid accidentally starting a valid magic at the junk tail.
      bytes.push_back(static_cast<std::uint8_t>(rng() % 0x40));
    }
    bytes.insert(bytes.end(), clean.begin(), clean.end());

    StreamDecoder dec;
    std::vector<wire::TelemetryRecord> out;
    dec.ingest(bytes, out);
    ASSERT_EQ(out.size(), recs.size()) << "junk=" << junk;
    EXPECT_EQ(dec.stats().bytes_resynced, junk);
  }
}

TEST(StreamDecoder, RandomMutationFuzzNeverCrashesAndAccountsExactly) {
  const auto recs = sample_records(120);
  const auto clean = stream_bytes(recs);

  std::mt19937_64 rng(0xabcdef);
  for (int trial = 0; trial < 100; ++trial) {
    auto bytes = clean;
    // A burst of random damage: flips, deletions, garbage insertions.
    const int edits = 1 + static_cast<int>(rng() % 8);
    for (int e = 0; e < edits; ++e) {
      switch (rng() % 3) {
        case 0:
          bytes[rng() % bytes.size()] ^= static_cast<std::uint8_t>(rng());
          break;
        case 1: {
          const std::size_t pos = rng() % bytes.size();
          const std::size_t len = std::min<std::size_t>(
              1 + rng() % 100, bytes.size() - pos);
          bytes.erase(bytes.begin() + static_cast<std::ptrdiff_t>(pos),
                      bytes.begin() + static_cast<std::ptrdiff_t>(pos + len));
          break;
        }
        default: {
          const std::size_t pos = rng() % bytes.size();
          std::vector<std::uint8_t> junk(1 + rng() % 50);
          for (auto& b : junk) b = static_cast<std::uint8_t>(rng());
          bytes.insert(bytes.begin() + static_cast<std::ptrdiff_t>(pos),
                       junk.begin(), junk.end());
          break;
        }
      }
    }
    if (bytes.empty()) continue;

    // Feed in random chunk sizes; must never crash, never hold a frame's
    // worth of carry, and every emitted record must be genuine.
    StreamDecoder dec;
    std::vector<wire::TelemetryRecord> out;
    std::size_t pos = 0;
    while (pos < bytes.size()) {
      const std::size_t n =
          std::min<std::size_t>(1 + rng() % 200, bytes.size() - pos);
      dec.ingest(std::span(bytes).subspan(pos, n), out);
      EXPECT_LT(dec.pending_bytes(), wire::kRecordFrameBytes);
      pos += n;
    }
    EXPECT_LE(out.size(), recs.size());
    expect_subsequence(out, recs);
    EXPECT_EQ(dec.stats().bytes_in, bytes.size());
  }
}

TEST(FeedFaultInjector, ScheduleIsIndependentOfChunking) {
  const auto recs = sample_records(300);
  const auto bytes = stream_bytes(recs);

  faults::FeedChannelConfig cfg;
  cfg.truncate_rate = 0.02;
  cfg.corrupt_rate = 0.03;
  cfg.garbage_rate = 0.02;
  cfg.stall_rate = 0.05;
  cfg.stall_quanta = 3;

  auto deliver = [&](std::size_t chunk) {
    faults::FaultLog log;
    faults::FeedFaultInjector inj(cfg, /*seed=*/1234, &log);
    std::vector<std::uint8_t> out;
    for (std::size_t pos = 0; pos < bytes.size(); pos += chunk) {
      const std::size_t n = std::min(chunk, bytes.size() - pos);
      const auto got = inj.transmit(std::span(bytes).subspan(pos, n));
      out.insert(out.end(), got.begin(), got.end());
    }
    const auto rest = inj.flush();
    out.insert(out.end(), rest.begin(), rest.end());
    return out;
  };

  const auto whole = deliver(bytes.size());
  EXPECT_EQ(deliver(1), whole);
  EXPECT_EQ(deliver(61), whole);
  EXPECT_EQ(deliver(4096), whole);

  // Different seed, different schedule (the knob actually does something).
  faults::FaultLog other_log;
  faults::FeedFaultInjector other(cfg, /*seed=*/99, &other_log);
  auto alt = other.transmit(bytes);
  const auto alt_rest = other.flush();
  alt.insert(alt.end(), alt_rest.begin(), alt_rest.end());
  EXPECT_NE(alt, whole);
}

TEST(FeedFaultInjector, DamagedStreamStaysDecodable) {
  const auto recs = sample_records(400);
  const auto bytes = stream_bytes(recs);

  faults::FeedChannelConfig cfg;
  cfg.truncate_rate = 0.05;
  cfg.corrupt_rate = 0.05;
  cfg.garbage_rate = 0.05;

  faults::FaultLog log;
  faults::FeedFaultInjector inj(cfg, /*seed=*/7, &log);
  auto delivered = inj.transmit(bytes);
  const auto rest = inj.flush();
  delivered.insert(delivered.end(), rest.begin(), rest.end());

  StreamDecoder dec;
  std::vector<wire::TelemetryRecord> out;
  dec.ingest(delivered, out);

  // Chaos costs frames but the stream keeps flowing: a healthy majority
  // decodes, everything decoded is genuine, accounting is self-consistent.
  EXPECT_GT(out.size(), recs.size() / 2);
  EXPECT_LT(out.size(), recs.size());
  expect_subsequence(out, recs);
  EXPECT_GT(dec.stats().frames_rejected, 0u);
  EXPECT_EQ(dec.stats().frames_ok, out.size());
}

}  // namespace
}  // namespace pq::serve
