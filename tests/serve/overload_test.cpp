// Overload behaviour of the pq_serve ingest path: the bounded IngestQueue
// and the ShardSupervisor's two explicit degradation policies. The
// invariants under test are the daemon's memory contract — a full queue
// either stalls the producer or sheds with EXACT accounting (submitted ==
// absorbed + shed, always), never grows without bound — and that live
// queries keep being answered while the firehose is on.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstring>
#include <thread>

#include "control/query_service.h"
#include "serve/ingest_queue.h"
#include "serve/query_router.h"
#include "serve/supervisor.h"
#include "wire/telemetry.h"

namespace pq::serve {
namespace {

wire::TelemetryRecord make_record(std::uint64_t i, std::uint32_t port) {
  wire::TelemetryRecord r;
  r.flow = make_flow(static_cast<std::uint32_t>(1 + i % 64));
  r.egress_port = port;
  r.size_bytes = 200;
  r.enq_timestamp = 500 * (i + 1);
  r.deq_timedelta = 250;
  r.enq_qdepth = static_cast<std::uint32_t>(i % 100);
  r.packet_id = i + 1;
  return r;
}

core::PipelineConfig small_pipeline() {
  core::PipelineConfig cfg;
  cfg.windows.m0 = 10;
  cfg.windows.alpha = 1;
  cfg.windows.k = 6;
  cfg.windows.num_windows = 3;
  cfg.monitor.max_depth_cells = 25000;
  return cfg;
}

#ifdef __linux__
/// Peak resident set in kilobytes, from /proc/self/status (VmHWM).
std::size_t peak_rss_kb() {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  char line[256];
  std::size_t kb = 0;
  while (std::fgets(line, sizeof line, f) != nullptr) {
    if (std::strncmp(line, "VmHWM:", 6) == 0) {
      kb = static_cast<std::size_t>(std::strtoul(line + 6, nullptr, 10));
      break;
    }
  }
  std::fclose(f);
  return kb;
}
#endif

TEST(IngestQueue, ShedsNewestWithExactCountWhenFull) {
  IngestQueue q(4);
  for (std::uint64_t i = 0; i < 4; ++i) {
    EXPECT_EQ(q.try_push(make_record(i, 0)), IngestQueue::Push::kOk);
  }
  EXPECT_EQ(q.try_push(make_record(4, 0)), IngestQueue::Push::kShed);
  EXPECT_EQ(q.try_push(make_record(5, 0)), IngestQueue::Push::kShed);
  EXPECT_EQ(q.shed_total(), 2u);
  EXPECT_EQ(q.depth(), 4u);
  EXPECT_EQ(q.peak_depth(), 4u);

  std::vector<wire::TelemetryRecord> out;
  EXPECT_EQ(q.pop_batch(out, 10, std::chrono::milliseconds(0)), 4u);
  // The four oldest survived; the shed ones are gone, not reordered.
  EXPECT_EQ(out.front().packet_id, 1u);
  EXPECT_EQ(out.back().packet_id, 4u);
}

TEST(IngestQueue, CloseDrainsAndRefusesNewRecords) {
  IngestQueue q(8);
  ASSERT_EQ(q.try_push(make_record(0, 0)), IngestQueue::Push::kOk);
  q.close();
  EXPECT_EQ(q.try_push(make_record(1, 0)), IngestQueue::Push::kClosed);
  EXPECT_EQ(q.push_wait(make_record(2, 0)), IngestQueue::Push::kClosed);
  EXPECT_FALSE(q.drained());

  std::vector<wire::TelemetryRecord> out;
  EXPECT_EQ(q.pop_batch(out, 10, std::chrono::milliseconds(0)), 1u);
  EXPECT_TRUE(q.drained());
  EXPECT_EQ(q.pop_batch(out, 10, std::chrono::milliseconds(0)), 0u);
}

TEST(IngestQueue, BackpressureBlocksProducerUntilConsumerMakesRoom) {
  IngestQueue q(2);
  ASSERT_EQ(q.push_wait(make_record(0, 0)), IngestQueue::Push::kOk);
  ASSERT_EQ(q.push_wait(make_record(1, 0)), IngestQueue::Push::kOk);

  std::atomic<bool> third_in{false};
  std::thread producer([&] {
    EXPECT_EQ(q.push_wait(make_record(2, 0)), IngestQueue::Push::kOk);
    third_in.store(true);
  });
  // The producer must be parked: nothing shed, nothing admitted.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(third_in.load());
  EXPECT_EQ(q.shed_total(), 0u);

  std::vector<wire::TelemetryRecord> out;
  EXPECT_EQ(q.pop_batch(out, 1, std::chrono::milliseconds(100)), 1u);
  producer.join();
  EXPECT_TRUE(third_in.load());
  EXPECT_EQ(q.depth(), 2u);
}

TEST(ShardSupervisor, BackpressureAbsorbsEverythingExactly) {
  core::ShardedPipeline pipeline(small_pipeline());
  pipeline.enable_port(5);
  pipeline.enable_port(9);
  control::ShardedAnalysis analysis(pipeline, control::AnalysisConfig{},
                                    nullptr);

  SupervisorOptions opts;
  opts.batch = 32;
  opts.queue_capacity = 64;  // small enough to exercise the stall path
  opts.overload = OverloadPolicy::kBackpressure;
  ShardSupervisor sup(pipeline, analysis, nullptr, opts);
  sup.start();

  constexpr std::uint64_t kPerPort = 20000;
  for (std::uint64_t i = 0; i < kPerPort; ++i) {
    ASSERT_EQ(sup.submit(make_record(i, 5)), Submit::kOk);
    ASSERT_EQ(sup.submit(make_record(i, 9)), Submit::kOk);
  }
  EXPECT_EQ(sup.submit(make_record(0, 77)), Submit::kUnknownPort);

  sup.drain_and_join();
  EXPECT_EQ(sup.records_submitted(), 2 * kPerPort);
  EXPECT_EQ(sup.records_absorbed(), 2 * kPerPort);
  EXPECT_EQ(sup.shed_total(), 0u);
  EXPECT_EQ(sup.rejected_port_total(), 1u);
  EXPECT_LE(sup.queue_peak_depth(), opts.queue_capacity);
  EXPECT_EQ(sup.queue_depth(), 0u);
}

TEST(ShardSupervisor, ShedNewestAccountsEveryRecordUnderFirehose) {
  core::ShardedPipeline pipeline(small_pipeline());
  pipeline.enable_port(3);
  control::ShardedAnalysis analysis(pipeline, control::AnalysisConfig{},
                                    nullptr);

  SupervisorOptions opts;
  opts.batch = 16;
  opts.queue_capacity = 32;
  opts.overload = OverloadPolicy::kShedNewest;
  ShardSupervisor sup(pipeline, analysis, nullptr, opts);
  sup.start();

#ifdef __linux__
  const std::size_t rss_before_kb = peak_rss_kb();
#endif

  constexpr std::uint64_t kTotal = 300000;
  std::uint64_t accepted = 0;
  std::uint64_t shed = 0;
  for (std::uint64_t i = 0; i < kTotal; ++i) {
    switch (sup.submit(make_record(i, 3))) {
      case Submit::kOk:
        ++accepted;
        break;
      case Submit::kShed:
        ++shed;
        break;
      default:
        FAIL() << "unexpected submit result";
    }
  }
  sup.drain_and_join();

  // Exact conservation: every record is accounted for, exactly once.
  EXPECT_EQ(accepted + shed, kTotal);
  EXPECT_EQ(sup.records_submitted(), accepted);
  EXPECT_EQ(sup.records_absorbed(), accepted);
  EXPECT_EQ(sup.shed_total(), shed);
  EXPECT_LE(sup.queue_peak_depth(), opts.queue_capacity);

#ifdef __linux__
  // The memory contract: a 300k-record firehose through a 32-slot queue
  // must not balloon the process. The bound is deliberately generous (the
  // pipeline itself owns registers); what it catches is an unbounded queue.
  const std::size_t rss_after_kb = peak_rss_kb();
  if (rss_before_kb > 0 && rss_after_kb > 0) {
    EXPECT_LT(rss_after_kb - rss_before_kb, 256u * 1024u)
        << "peak RSS grew by " << (rss_after_kb - rss_before_kb) << " kB";
  }
#endif
}

TEST(ShardSupervisor, QueriesAnsweredWhileOverloaded) {
  core::ShardedPipeline pipeline(small_pipeline());
  pipeline.enable_port(4);
  control::ShardedAnalysis analysis(pipeline, control::AnalysisConfig{},
                                    nullptr);

  SupervisorOptions opts;
  opts.batch = 8;
  opts.queue_capacity = 16;
  opts.overload = OverloadPolicy::kShedNewest;
  ShardSupervisor sup(pipeline, analysis, nullptr, opts);
  QueryRouter router(pipeline, analysis, &sup);
  sup.start();

  std::atomic<bool> stop{false};
  std::thread firehose([&] {
    std::uint64_t i = 0;
    while (!stop.load()) sup.submit(make_record(i++, 4));
  });

  // Live queries must produce well-formed, verifiable responses the whole
  // time the producer is saturating the queue.
  std::uint32_t answered = 0;
  for (std::uint64_t id = 1; id <= 200; ++id) {
    control::QueryRequest req;
    req.type = control::QueryType::kTimeWindows;
    req.request_id = id;
    req.port_prefix = 4;
    req.t1 = 0;
    req.t2 = 1'000'000;
    const auto resp_bytes = router.handle(control::encode_request(req));
    const control::QueryResponse resp = control::decode_response(resp_bytes);
    ASSERT_EQ(resp.request_id, id);
    ASSERT_TRUE(resp.status == control::QueryStatus::kOk ||
                resp.status == control::QueryStatus::kPartial);
    ++answered;
  }
  stop.store(true);
  firehose.join();
  sup.drain_and_join();

  EXPECT_EQ(answered, 200u);
  EXPECT_EQ(router.stats().served_live, 200u);
  EXPECT_EQ(sup.records_submitted(),
            sup.records_absorbed());  // drain left nothing queued
}

TEST(ShardSupervisor, WatchdogSeesNoStallOnHealthyShards) {
  core::ShardedPipeline pipeline(small_pipeline());
  pipeline.enable_port(1);
  control::ShardedAnalysis analysis(pipeline, control::AnalysisConfig{},
                                    nullptr);

  ShardSupervisor sup(pipeline, analysis, nullptr, SupervisorOptions{});
  sup.start();
  for (std::uint64_t i = 0; i < 5000; ++i) {
    ASSERT_EQ(sup.submit(make_record(i, 1)), Submit::kOk);
  }
  sup.drain_and_join();
  // After a drain there is no queued work, so a watchdog pass finds
  // nothing stuck.
  EXPECT_EQ(sup.check_watchdog(), 0u);
  EXPECT_EQ(sup.watchdog_stalls_total(), 0u);
}

}  // namespace
}  // namespace pq::serve
