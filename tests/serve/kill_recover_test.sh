#!/usr/bin/env bash
# Kill-and-recover proof for pq_serve, across three seeds:
#
#   1. Oracle run: pq_serve ingests the full stream uninterrupted
#      (--exit-at-eof) and leaves a clean archive.
#   2. Kill run: the same stream is appended in chunks while a second
#      pq_serve tails it; the daemon is SIGKILLed mid-ingest.
#   3. The surviving archive must be a strict PREFIX of the oracle's block
#      sequence (same kinds, spans and CRCs) — archive content is a
#      deterministic function of the record stream, so whatever survived
#      the kill is byte-equal to the oracle's first blocks.
#   4. A restarted daemon over the killed archive answers queries on the
#      recovered span byte-identically to pq_query, then drains cleanly on
#      SIGTERM (exit 0).
#   5. A graceful SIGTERM run loses zero submitted records.
#
# $1 is the directory holding the pq_* binaries (a build root is accepted).
set -euo pipefail

TOOLS_DIR="${1:?usage: kill_recover_test.sh <tools-dir-or-build-dir>}"
if [[ ! -x "$TOOLS_DIR/pq_serve" && -x "$TOOLS_DIR/tools/pq_serve" ]]; then
  TOOLS_DIR="$TOOLS_DIR/tools"
fi
for bin in pq_serve pq_ctl pq_query pq_gentrace; do
  test -x "$TOOLS_DIR/$bin" || { echo "$bin not found under '$1'" >&2; exit 2; }
done

WORK="$(mktemp -d)"
SERVE_PID=""
cleanup() {
  [[ -n "$SERVE_PID" ]] && kill -9 "$SERVE_PID" 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

# Wait until the daemon's absorbed counter (from --metrics-out) reaches $2.
wait_absorbed() {
  local prom="$1" want="$2" tries=0
  while (( tries++ < 400 )); do
    local got
    got="$(grep -s '^pq_serve_records_absorbed_total' "$prom" \
           | awk '{print int($2)}' || true)"
    [[ -n "$got" ]] && (( got >= want )) && return 0
    sleep 0.05
  done
  echo "timed out waiting for $want absorbed records in $prom" >&2
  return 1
}

wait_socket() {
  local sock="$1" tries=0
  while (( tries++ < 200 )); do
    [[ -S "$sock" ]] && return 0
    sleep 0.05
  done
  echo "timed out waiting for socket $sock" >&2
  return 1
}

PORT=7
for SEED in 1 2 3; do
  S="$WORK/s$SEED"
  mkdir -p "$S"
  "$TOOLS_DIR/pq_gentrace" burst "$S/full.pqsm" --ms 40 --seed "$SEED" \
    --stream --port "$PORT" > /dev/null
  TOTAL_BYTES="$(stat -c %s "$S/full.pqsm")"

  # --- 1. The uninterrupted oracle -----------------------------------------
  "$TOOLS_DIR/pq_serve" --ports "$PORT" --feed "$S/full.pqsm" --exit-at-eof \
    --archive-dir "$S/oracle" > "$S/oracle.log"
  ORACLE_ABSORBED="$(grep -o '[0-9]* record(s) absorbed' "$S/oracle.log" \
                     | awk '{print $1}')"
  "$TOOLS_DIR/pq_query" "$S/oracle" blocks 0 | sed 1d > "$S/oracle_blocks.txt"

  # --- 2. Chunked append + SIGKILL mid-ingest ------------------------------
  : > "$S/grow.pqsm"
  "$TOOLS_DIR/pq_serve" --ports "$PORT" --feed "$S/grow.pqsm" \
    --archive-dir "$S/killed" --metrics-out "$S/kill.prom" \
    --metrics-every-ms 20 > "$S/kill.log" &
  SERVE_PID=$!

  # Append the stream in frame-aligned chunks; kill -9 as soon as a full
  # checkpoint group has demonstrably reached the disk. The group's LAST
  # block is the calibration (kind=4) — appends preserve emission order and
  # the daemon's durability tick (--flush-every-ms) pushes sub-watermark
  # blocks to the kernel, so kind=4 on disk implies its window and monitor
  # snapshots are there too and the surviving span is queryable.
  CHUNK=$(( (TOTAL_BYTES / 10 / 61) * 61 ))
  APPENDED=0
  KILLED=0
  for i in $(seq 0 9); do
    dd if="$S/full.pqsm" bs=61 skip=$((APPENDED / 61)) \
       count=$((CHUNK / 61)) >> "$S/grow.pqsm" 2>/dev/null
    APPENDED=$((APPENDED + CHUNK))
    sleep 0.05
    BLOCKS="$("$TOOLS_DIR/pq_query" "$S/killed" blocks 0 2>/dev/null \
              | grep -c 'kind=4' || true)"
    if (( BLOCKS >= 1 )); then
      kill -9 "$SERVE_PID"
      KILLED=1
      break
    fi
  done
  if (( ! KILLED )); then
    # The whole file is appended; the first poll must land soon.
    tries=0
    while (( tries++ < 200 )); do
      BLOCKS="$("$TOOLS_DIR/pq_query" "$S/killed" blocks 0 2>/dev/null \
                | grep -c 'kind=4' || true)"
      (( BLOCKS >= 1 )) && break
      sleep 0.05
    done
    kill -9 "$SERVE_PID"
  fi
  wait "$SERVE_PID" 2>/dev/null || true
  SERVE_PID=""

  # --- 3. Surviving blocks are a prefix of the oracle's --------------------
  "$TOOLS_DIR/pq_query" "$S/killed" blocks 0 | sed 1d > "$S/killed_blocks.txt"
  SURVIVED="$(wc -l < "$S/killed_blocks.txt")"
  if (( SURVIVED < 1 )); then
    echo "seed $SEED: SIGKILL left no recovered blocks (vacuous kill)" >&2
    exit 1
  fi
  if ! head -n "$SURVIVED" "$S/oracle_blocks.txt" \
       | diff -u - "$S/killed_blocks.txt"; then
    echo "seed $SEED: surviving blocks are not an oracle prefix" >&2
    exit 1
  fi

  # The survivor's horizon: the last CALIBRATED checkpoint (kind=4 is the
  # final block of its group, so everything the group emitted is on disk).
  # Both archives are queried --as-of that horizon: calibration is
  # newest-wins, so the oracle's later checkpoints would otherwise
  # legitimately rescale the same span. Bounded to a common horizon, the
  # answers must be byte-identical.
  HORIZON="$(awk '$2=="kind=4" { for (i=1;i<=NF;i++) \
    if ($i ~ /^t_hi=/) h=substr($i,6) } END { print h }' \
    "$S/killed_blocks.txt")"
  if [[ -z "$HORIZON" ]]; then
    echo "seed $SEED: no calibrated checkpoint survived the kill" >&2
    exit 1
  fi
  T2=$(( HORIZON / 2 ))
  "$TOOLS_DIR/pq_query" "$S/killed" windows 0 0 "$T2" --as-of "$HORIZON" \
    | sed 1d > "$S/killed_win.txt"
  "$TOOLS_DIR/pq_query" "$S/oracle" windows 0 0 "$T2" --as-of "$HORIZON" \
    | sed 1d > "$S/oracle_win.txt"
  if ! diff -u "$S/oracle_win.txt" "$S/killed_win.txt"; then
    echo "seed $SEED: recovered window answers diverged from oracle" >&2
    exit 1
  fi

  # --- 4. Restart over the killed archive; live daemon answers must match
  # pq_query byte-for-byte after each tool's header line. ---------------
  : > "$S/idle.pqsm"
  "$TOOLS_DIR/pq_serve" --ports "$PORT" --feed "$S/idle.pqsm" \
    --archive-dir "$S/killed" --query-sock "$S/q.sock" > "$S/restart.log" &
  SERVE_PID=$!
  wait_socket "$S/q.sock"
  grep -q '^recovered:' "$S/restart.log" || {
    echo "seed $SEED: restart did not report a recovery scan" >&2
    exit 1
  }
  "$TOOLS_DIR/pq_ctl" "$S/q.sock" windows "$PORT" 0 "$T2" | sed 1d \
    > "$S/ctl_win.txt"
  # Note: pq_query re-reads the archive AFTER the restart repaired its torn
  # tail; recovery is content-neutral so answers are unchanged.
  "$TOOLS_DIR/pq_query" "$S/killed" windows 0 0 "$T2" | sed 1d \
    > "$S/requery_win.txt"
  if ! diff -u "$S/requery_win.txt" "$S/ctl_win.txt"; then
    echo "seed $SEED: daemon recovered answers diverged from pq_query" >&2
    exit 1
  fi
  "$TOOLS_DIR/pq_ctl" "$S/q.sock" monitor "$PORT" "$T2" | sed 1d \
    > "$S/ctl_mon.txt"
  "$TOOLS_DIR/pq_query" "$S/killed" monitor 0 "$T2" | sed 1d \
    > "$S/query_mon.txt"
  if ! diff -u "$S/query_mon.txt" "$S/ctl_mon.txt"; then
    echo "seed $SEED: daemon monitor answers diverged from pq_query" >&2
    exit 1
  fi
  kill -TERM "$SERVE_PID"
  if ! wait "$SERVE_PID"; then
    echo "seed $SEED: SIGTERM restart did not exit 0" >&2
    exit 1
  fi
  SERVE_PID=""

  # --- 5. Graceful SIGTERM loses zero records ------------------------------
  "$TOOLS_DIR/pq_serve" --ports "$PORT" --feed "$S/full.pqsm" \
    --archive-dir "$S/graceful" --metrics-out "$S/grace.prom" \
    --metrics-every-ms 20 > "$S/grace.log" &
  SERVE_PID=$!
  wait_absorbed "$S/grace.prom" "$ORACLE_ABSORBED"
  kill -TERM "$SERVE_PID"
  if ! wait "$SERVE_PID"; then
    echo "seed $SEED: graceful SIGTERM did not exit 0" >&2
    exit 1
  fi
  SERVE_PID=""
  grep -q "${ORACLE_ABSORBED} record(s) absorbed, 0 shed" "$S/grace.log" || {
    echo "seed $SEED: graceful drain lost records:" >&2
    cat "$S/grace.log" >&2
    exit 1
  }
  # And its archive is block-for-block the oracle's.
  "$TOOLS_DIR/pq_query" "$S/graceful" blocks 0 | sed 1d \
    | diff -u "$S/oracle_blocks.txt" - || {
    echo "seed $SEED: graceful archive diverged from oracle" >&2
    exit 1
  }

  echo "seed $SEED: kill-and-recover ok ($SURVIVED surviving block(s))"
done

echo "kill-and-recover ok across 3 seeds"
