#include "baseline/hashpipe.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace pq::baseline {
namespace {

TEST(HashPipe, RejectsBadParams) {
  EXPECT_THROW(HashPipe({.stages = 0}), std::invalid_argument);
  EXPECT_THROW(HashPipe({.stages = 2, .slots_per_stage = 0}),
               std::invalid_argument);
}

TEST(HashPipe, ExactForFewFlows) {
  HashPipe hp({.stages = 4, .slots_per_stage = 256});
  for (int i = 0; i < 100; ++i) {
    hp.insert(make_flow(1));
    if (i % 2 == 0) hp.insert(make_flow(2));
  }
  const auto counts = hp.read();
  EXPECT_DOUBLE_EQ(counts.at(make_flow(1)), 100.0);
  EXPECT_DOUBLE_EQ(counts.at(make_flow(2)), 50.0);
}

TEST(HashPipe, NeverOvercounts) {
  HashPipe hp({.stages = 3, .slots_per_stage = 32});
  Rng rng(1);
  std::unordered_map<FlowId, double> truth;
  for (int i = 0; i < 5000; ++i) {
    const FlowId f = make_flow(static_cast<std::uint32_t>(
        rng.uniform_below(200)));
    hp.insert(f);
    truth[f] += 1.0;
  }
  for (const auto& [flow, n] : hp.read()) {
    EXPECT_LE(n, truth.at(flow) + 1e-9) << to_string(flow);
  }
}

TEST(HashPipe, RetainsHeavyHittersUnderPressure) {
  HashPipe hp({.stages = 5, .slots_per_stage = 64});
  Rng rng(2);
  // One elephant (30% of traffic) among 2000 mice.
  double elephant_truth = 0;
  for (int i = 0; i < 20000; ++i) {
    if (rng.chance(0.3)) {
      hp.insert(make_flow(0));
      ++elephant_truth;
    } else {
      hp.insert(make_flow(1 + static_cast<std::uint32_t>(
                              rng.uniform_below(2000))));
    }
  }
  const auto counts = hp.read();
  ASSERT_TRUE(counts.contains(make_flow(0)));
  EXPECT_GT(counts.at(make_flow(0)), 0.5 * elephant_truth);
}

TEST(HashPipe, ResetClearsEverything) {
  HashPipe hp({.stages = 3, .slots_per_stage = 64});
  for (int i = 0; i < 100; ++i) hp.insert(make_flow(1));
  hp.reset();
  EXPECT_TRUE(hp.read().empty());
}

TEST(HashPipe, SramMatchesPaperComparableConfig) {
  // Paper Section 7.1: HashPipe with 4096 entries x 5 stages is comparable
  // to PrintQueue's 4096 cells x 4 windows.
  HashPipe hp({.stages = 5, .slots_per_stage = 4096});
  EXPECT_EQ(hp.sram_bytes(), 5u * 4096 * 16);
}

TEST(HashPipe, CountConservationAcrossStages) {
  // The sum of all stored counts never exceeds the number of insertions
  // (evicted entries lose their counts, they never duplicate).
  HashPipe hp({.stages = 4, .slots_per_stage = 16});
  Rng rng(3);
  const int n = 2000;
  for (int i = 0; i < n; ++i) {
    hp.insert(make_flow(static_cast<std::uint32_t>(rng.uniform_below(500))));
  }
  double total = 0;
  for (const auto& [f, c] : hp.read()) total += c;
  EXPECT_LE(total, static_cast<double>(n));
  EXPECT_GT(total, 0.0);
}

}  // namespace
}  // namespace pq::baseline
