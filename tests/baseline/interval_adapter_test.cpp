#include "baseline/interval_adapter.h"

#include <gtest/gtest.h>

#include "baseline/hashpipe.h"
#include "baseline/linear_store.h"

namespace pq::baseline {
namespace {

sim::EgressContext ctx(std::uint32_t flow, Timestamp deq,
                       std::uint32_t port = 0) {
  sim::EgressContext c;
  c.flow = make_flow(flow);
  c.egress_port = port;
  c.enq_timestamp = deq;
  c.deq_timedelta = 0;
  return c;
}

std::unique_ptr<FlowCounter> counter() {
  return std::make_unique<HashPipe>(
      HashPipeParams{.stages = 4, .slots_per_stage = 256});
}

TEST(IntervalAdapter, RejectsBadArgs) {
  EXPECT_THROW(IntervalAdapter(nullptr, 100), std::invalid_argument);
  EXPECT_THROW(IntervalAdapter(counter(), 0), std::invalid_argument);
}

TEST(IntervalAdapter, RollsAtPeriodBoundaries) {
  IntervalAdapter ad(counter(), 1000);
  for (Timestamp t = 0; t < 3500; t += 100) ad.on_egress(ctx(1, t));
  ad.finalize();
  EXPECT_EQ(ad.periods_stored(), 4u);  // 3 full + 1 partial
}

TEST(IntervalAdapter, FullPeriodQueryIsExact) {
  IntervalAdapter ad(counter(), 1000);
  for (Timestamp t = 0; t < 1000; t += 100) ad.on_egress(ctx(1, t));
  ad.finalize();
  const auto counts = ad.query(0, 1000);
  EXPECT_NEAR(counts.at(make_flow(1)), 10.0, 1e-9);
}

TEST(IntervalAdapter, SubIntervalQueryProratesLinearly) {
  // This is the paper's point: a fixed-interval system cannot resolve a
  // sub-interval, so a query for 1/4 of the period gets 1/4 of the counts
  // regardless of when the packets actually arrived.
  IntervalAdapter ad(counter(), 1000);
  // All 8 packets arrive in the first 200 ns of the period.
  for (Timestamp t = 0; t < 200; t += 25) ad.on_egress(ctx(1, t));
  ad.finalize();
  const auto counts = ad.query(750, 1000);  // last quarter: truly 0 packets
  EXPECT_NEAR(counts.at(make_flow(1)), 2.0, 1e-9);  // prorated 8 * 0.25
}

TEST(IntervalAdapter, QueryAcrossPeriodsSumsPieces) {
  IntervalAdapter ad(counter(), 1000);
  for (Timestamp t = 0; t < 2000; t += 100) ad.on_egress(ctx(1, t));
  ad.finalize();
  const auto counts = ad.query(500, 1500);
  EXPECT_NEAR(counts.at(make_flow(1)), 10.0, 1e-9);  // half of each period
}

TEST(IntervalAdapter, IgnoresOtherPorts) {
  IntervalAdapter ad(counter(), 1000, /*egress_port=*/2);
  ad.on_egress(ctx(1, 100, 2));
  ad.on_egress(ctx(1, 200, 3));
  ad.finalize();
  EXPECT_NEAR(ad.query(0, 1000).at(make_flow(1)), 1.0, 1e-9);
}

TEST(IntervalAdapter, EmptyQueryReturnsNothing) {
  IntervalAdapter ad(counter(), 1000);
  ad.on_egress(ctx(1, 100));
  ad.finalize();
  EXPECT_TRUE(ad.query(500, 500).empty());
  EXPECT_TRUE(ad.query(5000, 6000).empty());
}

TEST(LinearStore, ExactQueriesWhileRetained) {
  LinearStore ls;
  for (Timestamp t = 0; t < 100; t += 10) ls.insert(make_flow(1), t);
  ls.insert(make_flow(2), 55);
  const auto counts = ls.query(30, 60);
  EXPECT_DOUBLE_EQ(counts.at(make_flow(1)), 3.0);  // 30, 40, 50
  EXPECT_DOUBLE_EQ(counts.at(make_flow(2)), 1.0);
}

TEST(LinearStore, CapacityEvictsOldest) {
  LinearStore ls(5);
  for (Timestamp t = 0; t < 10; ++t) ls.insert(make_flow(1), t);
  EXPECT_EQ(ls.records_retained(), 5u);
  EXPECT_TRUE(ls.query(0, 5).empty());       // evicted
  EXPECT_EQ(ls.query(5, 10).size(), 1u);
  EXPECT_DOUBLE_EQ(ls.query(5, 10).at(make_flow(1)), 5.0);
}

TEST(LinearStore, BytesGrowLinearly) {
  LinearStore ls;
  for (int i = 0; i < 100; ++i) ls.insert(make_flow(1), i);
  EXPECT_EQ(ls.bytes_inserted(), 100u * LinearStore::kRecordBytes);
}

}  // namespace
}  // namespace pq::baseline
