#include "baseline/flowradar.h"

#include <gtest/gtest.h>

#include <unordered_map>
#include <unordered_set>

#include "common/rng.h"

namespace pq::baseline {
namespace {

FlowRadarParams small_params() {
  FlowRadarParams p;
  p.cells = 3 * 512;
  p.num_hashes = 3;
  p.bloom_bits = 1 << 15;
  p.bloom_hashes = 6;
  return p;
}

TEST(FlowRadar, RejectsBadParams) {
  FlowRadarParams p = small_params();
  p.cells = 0;
  EXPECT_THROW(FlowRadar{p}, std::invalid_argument);
  p = small_params();
  p.num_hashes = 0;
  EXPECT_THROW(FlowRadar{p}, std::invalid_argument);
}

TEST(FlowRadar, FlowXorIsSelfInverse) {
  const FlowId a = make_flow(1), b = make_flow(2);
  EXPECT_EQ(flow_xor(flow_xor(a, b), b), a);
  EXPECT_EQ(flow_xor(a, a), FlowId{});
}

TEST(FlowRadar, DecodesExactlyUnderCapacity) {
  FlowRadar fr(small_params());
  Rng rng(1);
  std::unordered_map<FlowId, double> truth;
  // 120 flows in a 1536-cell table: well under decode capacity.
  for (int i = 0; i < 5000; ++i) {
    const FlowId f =
        make_flow(static_cast<std::uint32_t>(rng.uniform_below(120)));
    fr.insert(f);
    truth[f] += 1.0;
  }
  const auto counts = fr.read();
  EXPECT_EQ(fr.last_undecoded(), 0u);
  ASSERT_EQ(counts.size(), truth.size());
  for (const auto& [flow, n] : truth) {
    EXPECT_DOUBLE_EQ(counts.at(flow), n) << to_string(flow);
  }
}

TEST(FlowRadar, DecodeDegradesGracefullyWhenOverloaded) {
  FlowRadar fr(small_params());
  // 5000 distinct flows overwhelm 1536 cells: peeling stalls.
  for (std::uint32_t i = 0; i < 5000; ++i) fr.insert(make_flow(i));
  const auto counts = fr.read();
  EXPECT_LT(counts.size(), 5000u);
  EXPECT_GT(fr.last_undecoded(), 0u);
}

TEST(FlowRadar, DecodedFlowsAreNeverFabricated) {
  FlowRadar fr(small_params());
  Rng rng(2);
  std::unordered_set<FlowId> inserted;
  for (int i = 0; i < 2000; ++i) {
    const FlowId f =
        make_flow(static_cast<std::uint32_t>(rng.uniform_below(300)));
    fr.insert(f);
    inserted.insert(f);
  }
  for (const auto& [flow, n] : fr.read()) {
    EXPECT_TRUE(inserted.contains(flow)) << to_string(flow);
    EXPECT_GT(n, 0.0);
  }
}

TEST(FlowRadar, ReadIsNonDestructive) {
  FlowRadar fr(small_params());
  for (int i = 0; i < 50; ++i) fr.insert(make_flow(7));
  const auto first = fr.read();
  const auto second = fr.read();
  EXPECT_DOUBLE_EQ(first.at(make_flow(7)), second.at(make_flow(7)));
}

TEST(FlowRadar, ResetClears) {
  FlowRadar fr(small_params());
  fr.insert(make_flow(1));
  fr.reset();
  EXPECT_TRUE(fr.read().empty());
  // Re-inserting after reset counts from scratch (Bloom cleared too).
  fr.insert(make_flow(1));
  EXPECT_DOUBLE_EQ(fr.read().at(make_flow(1)), 1.0);
}

TEST(FlowRadar, SramAccountsTableAndBloom) {
  FlowRadar fr(small_params());
  EXPECT_EQ(fr.sram_bytes(), 1536u * 21 + (1u << 15) / 8);
}

TEST(FlowRadar, PacketCountsSurviveManyFlowsPerCell) {
  // Two flows forced through the same table still decode exactly (the
  // counting-table arithmetic is linear).
  FlowRadarParams p = small_params();
  FlowRadar fr(p);
  for (int i = 0; i < 10; ++i) fr.insert(make_flow(1));
  for (int i = 0; i < 20; ++i) fr.insert(make_flow(2));
  for (int i = 0; i < 30; ++i) fr.insert(make_flow(3));
  const auto counts = fr.read();
  EXPECT_DOUBLE_EQ(counts.at(make_flow(1)), 10.0);
  EXPECT_DOUBLE_EQ(counts.at(make_flow(2)), 20.0);
  EXPECT_DOUBLE_EQ(counts.at(make_flow(3)), 30.0);
}

}  // namespace
}  // namespace pq::baseline
