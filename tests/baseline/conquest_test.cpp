#include "baseline/conquest.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace pq::baseline {
namespace {

ConQuestParams small_params() {
  ConQuestParams p;
  p.num_snapshots = 4;
  p.rows = 2;
  p.columns = 256;
  p.snapshot_window_ns = 1000;
  return p;
}

TEST(ConQuest, RejectsBadParams) {
  ConQuestParams p = small_params();
  p.num_snapshots = 1;
  EXPECT_THROW(ConQuest{p}, std::invalid_argument);
  p = small_params();
  p.snapshot_window_ns = 0;
  EXPECT_THROW(ConQuest{p}, std::invalid_argument);
}

TEST(ConQuest, EmptyStructureAnswersZero) {
  ConQuest cq(small_params());
  EXPECT_EQ(cq.query_flow(make_flow(1), 5000, 3000), 0u);
  EXPECT_FALSE(cq.covers(0, 5000));
}

TEST(ConQuest, RecentSnapshotsHoldFlowBytes) {
  ConQuest cq(small_params());
  // 10 x 100 B packets in window 0, then move to window 1.
  for (Timestamp t = 0; t < 1000; t += 100) {
    cq.on_packet(make_flow(1), 100, t);
  }
  cq.on_packet(make_flow(2), 50, 1500);  // rotates to window 1
  // Query at window 1 looking back one window: sees flow 1's bytes.
  EXPECT_EQ(cq.query_flow(make_flow(1), 1500, 1000), 1000u);
  EXPECT_EQ(cq.query_flow(make_flow(3), 1500, 1000), 0u);
}

TEST(ConQuest, LookbackSumsMultipleSnapshots) {
  ConQuest cq(small_params());
  cq.on_packet(make_flow(1), 100, 500);   // window 0
  cq.on_packet(make_flow(1), 200, 1500);  // window 1
  cq.on_packet(make_flow(1), 400, 2500);  // window 2
  cq.on_packet(make_flow(9), 1, 3500);    // window 3 (active)
  EXPECT_EQ(cq.query_flow(make_flow(1), 3500, 1000), 400u);
  EXPECT_EQ(cq.query_flow(make_flow(1), 3500, 2000), 600u);
  EXPECT_EQ(cq.query_flow(make_flow(1), 3500, 3000), 700u);
}

TEST(ConQuest, OldSnapshotsRotateAwayAndAreCleaned) {
  ConQuest cq(small_params());
  cq.on_packet(make_flow(1), 1000, 500);  // window 0
  // Advance 6 windows: window 0's slot has been reused and cleaned.
  cq.on_packet(make_flow(2), 10, 6500);
  EXPECT_EQ(cq.query_flow(make_flow(1), 6500, 60'000), 0u);
  EXPECT_FALSE(cq.covers(500, 6500));
  EXPECT_TRUE(cq.covers(4500, 6500));
}

TEST(ConQuest, HistoryBoundIsRMinusOneWindows) {
  ConQuest cq(small_params());
  EXPECT_EQ(cq.history_ns(), 3000u);
}

TEST(ConQuest, CmsNeverUndercounts) {
  ConQuest cq(small_params());
  Rng rng(3);
  std::unordered_map<FlowId, std::uint64_t> truth;
  for (int i = 0; i < 2000; ++i) {
    const FlowId f =
        make_flow(static_cast<std::uint32_t>(rng.uniform_below(500)));
    cq.on_packet(f, 100, 100 + static_cast<Timestamp>(i) / 4);
    truth[f] += 100;
  }
  cq.on_packet(make_flow(9999), 1, 2000);  // rotate past the data
  for (const auto& [flow, bytes] : truth) {
    EXPECT_GE(cq.query_flow(flow, 2000, 2000) + 1, bytes) << to_string(flow);
  }
}

TEST(ConQuest, IdleGapsCleanInterveningWindows) {
  ConQuest cq(small_params());
  cq.on_packet(make_flow(1), 100, 100);
  // Long idle gap, then traffic again: the old window must not leak into
  // queries anchored after the gap.
  cq.on_packet(make_flow(2), 100, 100'000);
  EXPECT_EQ(cq.query_flow(make_flow(1), 100'000, 3000), 0u);
}

TEST(ConQuest, SramAccountsRing) {
  ConQuest cq(small_params());
  EXPECT_EQ(cq.sram_bytes(), 4u * 2 * 256 * 4);
}

TEST(ConQuest, CannotAnswerVictimQueriesOlderThanRing) {
  // The PrintQueue paper's Section 8 point: a victim whose interval has
  // rotated out of the ring is unanswerable, while PrintQueue's windows
  // retain (compressed) history for the whole set period.
  ConQuestParams p = small_params();  // history: 3 us
  ConQuest cq(p);
  for (Timestamp t = 0; t < 50'000; t += 50) {
    cq.on_packet(make_flow(static_cast<std::uint32_t>(t % 7)), 100, t);
  }
  // A victim dequeued 10 us ago is already outside ConQuest's history.
  EXPECT_FALSE(cq.covers(40'000 - 10'000, 50'000));
  EXPECT_TRUE(cq.covers(48'000, 50'000));
}

}  // namespace
}  // namespace pq::baseline
