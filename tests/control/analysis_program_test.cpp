#include "control/analysis_program.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "ground/metrics.h"

namespace pq::control {
namespace {

core::PipelineConfig small_config() {
  core::PipelineConfig cfg;
  cfg.windows.m0 = 4;   // 16 ns cells
  cfg.windows.alpha = 1;
  cfg.windows.k = 6;    // 64 cells -> window 0 period 1024 ns
  cfg.windows.num_windows = 3;
  cfg.monitor.max_depth_cells = 200;
  return cfg;
}

sim::EgressContext ctx(std::uint32_t flow, Timestamp deq,
                       Duration delta = 0, std::uint32_t qdepth = 0) {
  sim::EgressContext c;
  c.flow = make_flow(flow);
  c.egress_port = 0;
  c.size_bytes = 80;
  c.packet_cells = 1;
  c.enq_qdepth = qdepth;
  c.enq_timestamp = deq - delta;
  c.deq_timedelta = delta;
  return c;
}

TEST(AnalysisProgram, DefaultPollPeriodIsSetPeriod) {
  core::PrintQueuePipeline pipe(small_config());
  AnalysisProgram ap(pipe, {});
  EXPECT_EQ(ap.poll_period_ns(), pipe.windows().layout().set_period_ns());
}

TEST(AnalysisProgram, PollsOncePerPeriod) {
  core::PrintQueuePipeline pipe(small_config());
  pipe.enable_port(0);
  AnalysisProgram ap(pipe, {});
  const Duration t_set = ap.poll_period_ns();
  // Feed packets spanning 3.5 set periods.
  for (Timestamp t = 16; t < t_set * 7 / 2; t += 16) {
    pipe.on_egress(ctx(1, t));
  }
  EXPECT_EQ(ap.polls_performed(), 3u);
  EXPECT_EQ(ap.window_snapshots(0).size(), 3u);
  EXPECT_EQ(ap.monitor_snapshots(0).size(), 3u);
}

TEST(AnalysisProgram, FinalizeAddsTailCheckpoint) {
  core::PrintQueuePipeline pipe(small_config());
  pipe.enable_port(0);
  AnalysisProgram ap(pipe, {});
  pipe.on_egress(ctx(1, 100));
  EXPECT_EQ(ap.window_snapshots(0).size(), 0u);
  ap.finalize(200);
  EXPECT_EQ(ap.window_snapshots(0).size(), 1u);
}

TEST(AnalysisProgram, SnapshotsAlternateBanks) {
  core::PrintQueuePipeline pipe(small_config());
  pipe.enable_port(0);
  AnalysisProgram ap(pipe, {});
  const std::uint32_t b0 = pipe.windows().active_bank();
  pipe.on_egress(ctx(1, ap.poll_period_ns() + 1));
  EXPECT_NE(pipe.windows().active_bank(), b0);
  pipe.on_egress(ctx(1, 2 * ap.poll_period_ns() + 1));
  EXPECT_EQ(pipe.windows().active_bank(), b0);
}

TEST(AnalysisProgram, QueryRecoversUniformTrafficExactlyInFreshWindow) {
  // One packet per cell period, all within the most recent window period:
  // the asynchronous query must recover per-flow counts exactly.
  core::PrintQueuePipeline pipe(small_config());
  pipe.enable_port(0);
  AnalysisConfig cfg;
  cfg.z0_override = 1.0;
  AnalysisProgram ap(pipe, cfg);
  Timestamp t = 16;
  for (int i = 0; i < 60; ++i, t += 16) {
    pipe.on_egress(ctx(static_cast<std::uint32_t>(i % 4), t));
  }
  ap.finalize(t);
  const auto counts = ap.query_time_windows(0, 16, t);
  ASSERT_EQ(counts.size(), 4u);
  for (const auto& [flow, n] : counts) EXPECT_NEAR(n, 15.0, 0.01);
}

TEST(AnalysisProgram, QuerySpansMultipleCheckpoints) {
  // Traffic over several set periods: a query covering an interval that
  // crosses checkpoint boundaries stitches them together.
  core::PrintQueuePipeline pipe(small_config());
  pipe.enable_port(0);
  AnalysisConfig cfg;
  cfg.z0_override = 1.0;
  AnalysisProgram ap(pipe, cfg);
  const Duration t_set = ap.poll_period_ns();
  Timestamp t = 16;
  std::uint64_t sent = 0;
  for (; t < 3 * t_set; t += 16) {
    pipe.on_egress(ctx(1, t));
    ++sent;
  }
  ap.finalize(t);
  const auto counts = ap.query_time_windows(0, 0, t);
  ASSERT_TRUE(counts.contains(make_flow(1)));
  // Compression loses some packets in deep windows, but the recovered total
  // must be in the right range.
  EXPECT_GT(counts.at(make_flow(1)), 0.5 * static_cast<double>(sent));
  EXPECT_LT(counts.at(make_flow(1)), 1.5 * static_cast<double>(sent));
}

TEST(AnalysisProgram, EmptyQueriesReturnNothing) {
  core::PrintQueuePipeline pipe(small_config());
  pipe.enable_port(0);
  AnalysisProgram ap(pipe, {});
  EXPECT_TRUE(ap.query_time_windows(0, 0, 1000).empty());  // no snapshots
  pipe.on_egress(ctx(1, 100));
  ap.finalize(200);
  EXPECT_TRUE(ap.query_time_windows(0, 50, 50).empty());  // empty interval
}

TEST(AnalysisProgram, DqTriggerCapturesSpecialRegisters) {
  core::PipelineConfig pcfg = small_config();
  pcfg.dq_delay_threshold_ns = 100;
  core::PrintQueuePipeline pipe(pcfg);
  pipe.enable_port(0);
  AnalysisConfig cfg;
  cfg.z0_override = 1.0;
  cfg.dq_read_time_ns = 1000;
  AnalysisProgram ap(pipe, cfg);

  // Direct culprits of the victim: packets dequeued within [enq, deq].
  pipe.on_egress(ctx(2, 32));
  pipe.on_egress(ctx(2, 48));
  pipe.on_egress(ctx(3, 64));
  // Victim: enqueued at 20, dequeued at 80 (delay 60 < threshold? no: 60;
  // use a 200 ns delay victim dequeued at 220).
  pipe.on_egress(ctx(9, 220, 200));
  ASSERT_EQ(ap.dq_captures(0).size(), 1u);
  const auto& cap = ap.dq_captures(0)[0];
  EXPECT_EQ(cap.notification.victim_flow, make_flow(9));

  const auto counts = ap.query_dq_capture(cap, cap.notification.enq_timestamp,
                                          cap.notification.deq_timestamp);
  // Packets of flows 2 and 3 dequeued in [20, 220) are direct culprits.
  EXPECT_NEAR(counts.at(make_flow(2)), 2.0, 0.01);
  EXPECT_NEAR(counts.at(make_flow(3)), 1.0, 0.01);
}

TEST(AnalysisProgram, DqLockReleasesAfterReadTime) {
  core::PipelineConfig pcfg = small_config();
  pcfg.dq_delay_threshold_ns = 100;
  core::PrintQueuePipeline pipe(pcfg);
  pipe.enable_port(0);
  AnalysisConfig cfg;
  cfg.dq_read_time_ns = 500;
  AnalysisProgram ap(pipe, cfg);

  pipe.on_egress(ctx(1, 300, 200));  // trigger at deq 300
  EXPECT_TRUE(pipe.windows().dataplane_query_locked());
  pipe.on_egress(ctx(2, 500, 200));  // within read window: ignored
  EXPECT_EQ(ap.dq_captures(0).size(), 1u);
  pipe.on_egress(ctx(3, 900, 200));  // past 300+500: lock released, refires
  EXPECT_EQ(ap.dq_captures(0).size(), 2u);
}

TEST(AnalysisProgram, QueueMonitorQueryPicksNearestSnapshot) {
  core::PrintQueuePipeline pipe(small_config());
  pipe.enable_port(0);
  AnalysisProgram ap(pipe, {});
  const Duration t_set = ap.poll_period_ns();

  // First period: queue builds to 50 under flow 1. The packet that crosses
  // into the second period observes the same depth (no new entry) and
  // triggers the first checkpoint; only then does flow 2 push to 120.
  pipe.on_egress(ctx(1, 100, 0, 49));
  pipe.on_egress(ctx(1, t_set + 10, 0, 49));
  pipe.on_egress(ctx(2, t_set + 50, 0, 119));
  ap.finalize(2 * t_set);

  const auto early = ap.query_queue_monitor(0, 100);
  ASSERT_FALSE(early.empty());
  EXPECT_EQ(early.back().level, 50u);

  const auto late = ap.query_queue_monitor(0, 2 * t_set);
  ASSERT_FALSE(late.empty());
  EXPECT_EQ(late.back().level, 120u);
  EXPECT_EQ(late.back().flow, make_flow(2));
}

TEST(AnalysisProgram, CoefficientsUseMeasuredGapWhenNoOverride) {
  core::PrintQueuePipeline pipe(small_config());
  pipe.enable_port(0);
  AnalysisProgram ap(pipe, {});
  // 32 ns dequeue gaps with m0 = 4 -> z0 = 16/32 = 0.5. Gaps only count
  // while the queue is non-empty (Theorem 3 applies during congestion).
  Timestamp t = 0;
  for (int i = 0; i < 1000; ++i) {
    t += 32;
    pipe.on_egress(ctx(1, t, 0, /*qdepth=*/3));
  }
  const auto coeffs = ap.coefficients(0);
  const auto expected = core::CoefficientTable::compute(0.5, 1, 3);
  EXPECT_NEAR(coeffs.coefficient(1), expected.coefficient(1), 0.05);
}

TEST(AnalysisProgram, BytesPolledGrowsWithPolls) {
  core::PrintQueuePipeline pipe(small_config());
  pipe.enable_port(0);
  AnalysisProgram ap(pipe, {});
  EXPECT_EQ(ap.bytes_polled(), 0u);
  pipe.on_egress(ctx(1, ap.poll_period_ns() + 1));
  const auto after_one = ap.bytes_polled();
  EXPECT_GT(after_one, 0u);
  pipe.on_egress(ctx(1, 2 * ap.poll_period_ns() + 1));
  EXPECT_EQ(ap.bytes_polled(), 2 * after_one);
}

}  // namespace
}  // namespace pq::control
