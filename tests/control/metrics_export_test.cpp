// Unit tests for the pull-based exporters in control/metrics_export: each
// export_* must report exactly the source object's own counters, and the
// documented additive contract (exporting twice double-counts; gauges
// combine per their mode) must hold, because collect_system_metrics leans
// on it when merging shard registries.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "control/metrics_export.h"
#include "core/pipeline.h"
#include "faults/fault_plan.h"

namespace pq::control {
namespace {

core::PipelineConfig pipeline_config() {
  core::PipelineConfig cfg;
  cfg.windows.m0 = 4;
  cfg.windows.alpha = 1;
  cfg.windows.k = 5;
  cfg.windows.num_windows = 3;
  cfg.monitor.max_depth_cells = 640;
  cfg.monitor.granularity_cells = 8;
  cfg.dq_depth_threshold_cells = 100;
  return cfg;
}

sim::EgressContext make_ctx(std::uint32_t i) {
  sim::EgressContext c;
  c.flow = make_flow(i % 17);
  c.egress_port = 0;
  c.enq_timestamp = 1'000ull * i;
  c.deq_timedelta = 50;
  c.enq_qdepth = i % 130;  // crosses the 100-cell trigger threshold
  c.packet_id = i;
  return c;
}

/// A pipeline with some of everything on its counters: stores, evictions,
/// fired and ignored triggers, bank rotations.
core::PrintQueuePipeline driven_pipeline() {
  core::PrintQueuePipeline pipe(pipeline_config());
  pipe.enable_port(0);
  for (std::uint32_t i = 0; i < 250; ++i) pipe.on_egress(make_ctx(i));
  // A locked bank turns the next trigger into an ignored one.
  pipe.windows().begin_dataplane_query();
  pipe.on_egress(make_ctx(120));  // depth 120 >= threshold, but locked
  pipe.windows().end_dataplane_query();
  pipe.windows().flip_periodic();
  pipe.monitor().flip_periodic();
  for (std::uint32_t i = 250; i < 500; ++i) pipe.on_egress(make_ctx(i));
  return pipe;
}

#if PQ_METRICS_ENABLED

TEST(MetricsExport, PipelineExporterReportsPipelineCounters) {
  const core::PrintQueuePipeline pipe = driven_pipeline();
  // The drive must have hit every counted path.
  ASSERT_GT(pipe.dq_triggers_fired(), 0u);
  ASSERT_GT(pipe.dq_triggers_ignored(), 0u);

  obs::MetricsRegistry reg;
  export_pipeline_metrics(reg, pipe);

  EXPECT_EQ(reg.counter_value("pq_core_packets_seen_total"),
            pipe.packets_seen());
  EXPECT_EQ(reg.counter_value("pq_core_dq_triggers_fired_total"),
            pipe.dq_triggers_fired());
  EXPECT_EQ(reg.counter_value("pq_core_dq_triggers_ignored_total"),
            pipe.dq_triggers_ignored());

  const core::WindowStats& ws = pipe.windows().stats();
  std::uint64_t stored = 0, passed = 0, dropped = 0;
  for (const auto v : ws.stored) stored += v;
  for (const auto v : ws.passed) passed += v;
  for (const auto v : ws.dropped) dropped += v;
  ASSERT_GT(passed + dropped, 0u) << "drive produced no evictions";
  EXPECT_EQ(reg.counter_value("pq_core_window_cells_stored_total"), stored);
  EXPECT_EQ(reg.counter_value("pq_core_window_evictions_passed_total"),
            passed);
  EXPECT_EQ(reg.counter_value("pq_core_window_evictions_dropped_total"),
            dropped);
  EXPECT_EQ(reg.counter_value("pq_core_window_rotations_total"),
            pipe.windows().rotation_epoch());
  EXPECT_EQ(reg.counter_value("pq_core_monitor_updates_total"),
            pipe.monitor().updates());
  EXPECT_EQ(reg.counter_value("pq_core_monitor_rotations_total"),
            pipe.monitor().rotation_epoch());
  EXPECT_EQ(reg.counter_value("pq_core_register_bank_touches_total"),
            stored + pipe.monitor().updates());
  EXPECT_EQ(reg.gauge_value("pq_core_windows_sram_bytes"),
            pipe.windows().sram_bytes());
  EXPECT_EQ(reg.gauge_value("pq_core_monitor_sram_bytes"),
            pipe.monitor().sram_bytes());
}

TEST(MetricsExport, ExportIsAdditive) {
  // The header warns: every export_* ADDS into the registry — counters
  // increment on repeated export, and the per-shard registries are meant
  // to be combined with merge(), where the SRAM gauges (GaugeMode::kSum)
  // aggregate footprint across shards.
  const core::PrintQueuePipeline pipe = driven_pipeline();
  obs::MetricsRegistry once;
  export_pipeline_metrics(once, pipe);
  obs::MetricsRegistry twice;
  export_pipeline_metrics(twice, pipe);
  export_pipeline_metrics(twice, pipe);

  for (const char* name :
       {"pq_core_packets_seen_total", "pq_core_window_cells_stored_total",
        "pq_core_monitor_updates_total",
        "pq_core_register_bank_touches_total"}) {
    EXPECT_EQ(twice.counter_value(name), 2 * once.counter_value(name))
        << name;
  }

  obs::MetricsRegistry merged;
  export_pipeline_metrics(merged, pipe);
  obs::MetricsRegistry other_shard;
  export_pipeline_metrics(other_shard, pipe);
  merged.merge(other_shard);
  EXPECT_EQ(merged.counter_value("pq_core_packets_seen_total"),
            2 * pipe.packets_seen());
  EXPECT_EQ(merged.gauge_value("pq_core_windows_sram_bytes"),
            2 * once.gauge_value("pq_core_windows_sram_bytes"));
  EXPECT_EQ(merged.gauge_value("pq_core_monitor_sram_bytes"),
            2 * once.gauge_value("pq_core_monitor_sram_bytes"));
}

TEST(MetricsExport, FaultExporterTalliesScheduleByKind) {
  faults::FaultPlanConfig fcfg;
  fcfg.seed = 9;
  fcfg.torn_reads.probability = 0.6;
  fcfg.torn_reads.cells_scrambled = 4;
  fcfg.trigger_storm.probability = 0.3;
  fcfg.trigger_storm.forced_depth_cells = 500;
  fcfg.clock_skew.max_abs_skew_ns = 1'500;
  faults::FaultPlan plan(fcfg);

  // Fire torn reads...
  for (int i = 0; i < 40; ++i) {
    core::WindowState wsnap(2, std::vector<core::WindowCell>(16));
    plan.torn_reads().on_window_read(0, wsnap);
    core::MonitorState msnap;
    msnap.entries.resize(16);
    plan.torn_reads().on_monitor_read(0, msnap);
  }
  // ...and the egress chain (storm + skew) over a short stream.
  struct NullHook final : sim::EgressHook {
    void on_egress(const sim::EgressContext&) override {}
  } sink;
  sim::EgressHook* chain = plan.attach_egress_chain(&sink);
  for (std::uint32_t i = 0; i < 200; ++i) chain->on_egress(make_ctx(i));

  ASSERT_FALSE(plan.schedule().empty());

  obs::MetricsRegistry reg;
  export_fault_metrics(reg, plan);
  EXPECT_EQ(reg.counter_value("pq_faults_injections_total"),
            plan.schedule().size());

  // Per-kind counters match a hand tally and partition the total.
  auto tally = [&plan](faults::FaultKind kind) {
    std::uint64_t n = 0;
    for (const auto& e : plan.schedule()) n += e.kind == kind ? 1 : 0;
    return n;
  };
  const std::uint64_t torn_w = tally(faults::FaultKind::kTornWindowRead);
  const std::uint64_t torn_m = tally(faults::FaultKind::kTornMonitorRead);
  const std::uint64_t forced = tally(faults::FaultKind::kForcedTrigger);
  const std::uint64_t skew = tally(faults::FaultKind::kSkewApplied);
  ASSERT_GT(torn_w, 0u);
  ASSERT_GT(torn_m, 0u);
  ASSERT_GT(forced, 0u);
  ASSERT_GT(skew, 0u);
  EXPECT_EQ(reg.counter_value("pq_faults_torn_window_read_total"), torn_w);
  EXPECT_EQ(reg.counter_value("pq_faults_torn_monitor_read_total"), torn_m);
  EXPECT_EQ(reg.counter_value("pq_faults_forced_trigger_total"), forced);
  EXPECT_EQ(reg.counter_value("pq_faults_clock_skew_total"), skew);
  EXPECT_EQ(torn_w + torn_m + forced + skew, plan.schedule().size())
      << "an injector kind fired that the tally does not cover";
}

#else  // !PQ_METRICS_ENABLED

TEST(MetricsExport, OffBuildExportsNothing) {
  const core::PrintQueuePipeline pipe = driven_pipeline();
  obs::MetricsRegistry reg;
  export_pipeline_metrics(reg, pipe);
  EXPECT_EQ(reg.to_json(), "{\"metrics\":[]}\n");
}

#endif  // PQ_METRICS_ENABLED

}  // namespace
}  // namespace pq::control
