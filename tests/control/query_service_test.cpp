#include "control/query_service.h"

#include <gtest/gtest.h>

namespace pq::control {
namespace {

core::PipelineConfig small_config() {
  core::PipelineConfig cfg;
  cfg.windows.m0 = 4;
  cfg.windows.alpha = 1;
  cfg.windows.k = 6;
  cfg.windows.num_windows = 3;
  cfg.monitor.max_depth_cells = 200;
  return cfg;
}

sim::EgressContext ctx(std::uint32_t flow, Timestamp deq,
                       std::uint32_t qdepth = 0) {
  sim::EgressContext c;
  c.flow = make_flow(flow);
  c.egress_port = 0;
  c.size_bytes = 80;
  c.packet_cells = 1;
  c.enq_qdepth = qdepth;
  c.enq_timestamp = deq;
  c.deq_timedelta = 0;
  return c;
}

struct Rig {
  Rig() : pipeline(small_config()), analysis(pipeline, make_acfg()),
          service(analysis) {
    pipeline.enable_port(0);
  }
  static AnalysisConfig make_acfg() {
    AnalysisConfig a;
    a.z0_override = 1.0;
    return a;
  }
  core::PrintQueuePipeline pipeline;
  AnalysisProgram analysis;
  QueryService service;
};

TEST(QueryService, TimeWindowRequestRoundTrips) {
  Rig rig;
  for (int i = 0; i < 40; ++i) {
    rig.pipeline.on_egress(ctx(static_cast<std::uint32_t>(i % 4),
                               16 + static_cast<Timestamp>(i) * 16));
  }
  rig.analysis.finalize(2000);

  QueryRequest req;
  req.type = QueryType::kTimeWindows;
  req.port_prefix = 0;
  req.t1 = 0;
  req.t2 = 2000;
  const auto wire_resp = rig.service.handle(encode_request(req));
  const auto resp = decode_response(wire_resp);
  EXPECT_EQ(resp.status, QueryStatus::kOk);
  ASSERT_EQ(resp.counts.size(), 4u);
  for (const auto& [flow, n] : resp.counts) EXPECT_NEAR(n, 10.0, 0.01);
  EXPECT_EQ(rig.service.requests_served(), 1u);
}

TEST(QueryService, QueueMonitorRequestRoundTrips) {
  Rig rig;
  rig.pipeline.on_egress(ctx(1, 100, 9));   // level 10
  rig.pipeline.on_egress(ctx(2, 200, 49));  // level 50
  rig.analysis.finalize(2000);

  QueryRequest req;
  req.type = QueryType::kQueueMonitor;
  req.t1 = 150;
  const auto resp = decode_response(rig.service.handle(encode_request(req)));
  EXPECT_EQ(resp.status, QueryStatus::kOk);
  ASSERT_EQ(resp.culprits.size(), 2u);
  EXPECT_EQ(resp.culprits[0].flow, make_flow(1));
  EXPECT_EQ(resp.culprits[0].level, 10u);
  EXPECT_EQ(resp.culprits[1].level, 50u);
}

TEST(QueryService, MalformedRequestIsRejectedSafely) {
  Rig rig;
  const std::vector<std::uint8_t> junk{1, 2, 3};
  const auto resp = decode_response(rig.service.handle(junk));
  EXPECT_EQ(resp.status, QueryStatus::kMalformed);
  EXPECT_EQ(rig.service.requests_rejected(), 1u);
}

TEST(QueryService, WrongMagicIsRejected) {
  Rig rig;
  auto req = encode_request({});
  req[0] ^= 0xff;
  const auto resp = decode_response(rig.service.handle(req));
  EXPECT_EQ(resp.status, QueryStatus::kMalformed);
}

TEST(QueryService, UnknownTypeIsRejected) {
  Rig rig;
  QueryRequest req;
  req.type = static_cast<QueryType>(99);  // encoded with a valid CRC
  const auto resp = decode_response(rig.service.handle(encode_request(req)));
  EXPECT_EQ(resp.status, QueryStatus::kUnknownType);
}

TEST(QueryService, CorruptedTypeByteFailsIntegrityNotDispatch) {
  // A flipped byte inside an otherwise well-formed frame must be caught by
  // the CRC trailer before the type is even looked at.
  Rig rig;
  auto req = encode_request({});
  req[4] = 99;  // type byte, CRC left stale
  const auto resp = decode_response(rig.service.handle(req));
  EXPECT_EQ(resp.status, QueryStatus::kMalformed);
  EXPECT_EQ(rig.service.health().crc_rejected, 1u);
}

TEST(QueryService, TruncatedResponseDecodesAsMalformed) {
  Rig rig;
  rig.pipeline.on_egress(ctx(1, 100));
  rig.analysis.finalize(2000);
  QueryRequest req;
  req.t2 = 2000;
  auto wire_resp = rig.service.handle(encode_request(req));
  wire_resp.resize(wire_resp.size() - 3);
  const auto resp = decode_response(wire_resp);
  EXPECT_EQ(resp.status, QueryStatus::kMalformed);
  EXPECT_TRUE(resp.counts.empty());
}

TEST(QueryService, EmptyResultIsValid) {
  Rig rig;
  rig.analysis.finalize(100);
  QueryRequest req;
  req.t1 = 0;
  req.t2 = 50;
  const auto resp = decode_response(rig.service.handle(encode_request(req)));
  EXPECT_EQ(resp.status, QueryStatus::kOk);
  EXPECT_TRUE(resp.counts.empty());
}

TEST(QueryService, UncoveredSpanIsFlaggedPartial) {
  Rig rig;
  rig.pipeline.on_egress(ctx(1, 100));
  rig.analysis.finalize(2000);
  // Half the span lies beyond every checkpoint: the answer must be marked
  // partial with the coverage as confidence, not silently passed as kOk.
  QueryRequest req;
  req.t1 = 0;
  req.t2 = 4000;
  const auto resp = decode_response(rig.service.handle(encode_request(req)));
  EXPECT_EQ(resp.status, QueryStatus::kPartial);
  EXPECT_GT(resp.confidence, 0.0);
  EXPECT_LT(resp.confidence, 1.0);
  EXPECT_EQ(rig.service.health().partial_answers, 1u);
}

TEST(QueryService, DuplicateRequestIdsAreServedFromCache) {
  Rig rig;
  rig.pipeline.on_egress(ctx(1, 100));
  rig.analysis.finalize(2000);
  QueryRequest req;
  req.t2 = 2000;
  req.request_id = 77;
  const auto wire_req = encode_request(req);
  const auto first = rig.service.handle(wire_req);
  const auto replay = rig.service.handle(wire_req);
  EXPECT_EQ(first, replay);  // byte-identical idempotent replay
  EXPECT_EQ(rig.service.requests_served(), 1u);
  EXPECT_EQ(rig.service.health().duplicates_deduped, 1u);
  EXPECT_EQ(decode_response(replay).request_id, 77u);
}

TEST(QueryService, ResponseEchoesRequestIdAndSurvivesRoundTrip) {
  Rig rig;
  rig.analysis.finalize(100);
  QueryRequest req;
  req.t1 = 0;
  req.t2 = 50;
  req.request_id = 0xDEADBEEFCAFEull;
  const auto resp = decode_response(rig.service.handle(encode_request(req)));
  EXPECT_EQ(resp.request_id, 0xDEADBEEFCAFEull);
  EXPECT_DOUBLE_EQ(resp.confidence, 1.0);
}

}  // namespace
}  // namespace pq::control
