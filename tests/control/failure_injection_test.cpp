// Failure injection for the control plane: what happens when the analysis
// program cannot keep up (polling slower than the set period), when
// data-plane triggers storm, and when traffic stops mid-run. The system
// must degrade gracefully — partial answers, never corrupt ones.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/stats.h"
#include "control/analysis_program.h"
#include "ground/ground_truth.h"
#include "ground/metrics.h"
#include "sim/egress_port.h"
#include "traffic/trace_gen.h"

namespace pq::control {
namespace {

core::PipelineConfig small_config() {
  core::PipelineConfig cfg;
  cfg.windows.m0 = 6;
  cfg.windows.alpha = 1;
  cfg.windows.k = 8;    // set period: 7 * 2^14 ns ~ 115 us
  cfg.windows.num_windows = 3;
  cfg.monitor.max_depth_cells = 25000;
  return cfg;
}

struct Rig {
  explicit Rig(AnalysisConfig acfg,
               core::PipelineConfig pcfg = small_config())
      : pipeline(pcfg), analysis((pipeline.enable_port(0), pipeline), acfg) {
    sim::PortConfig port_cfg;
    port = std::make_unique<sim::EgressPort>(port_cfg);
    port->add_hook(&pipeline);
  }
  core::PrintQueuePipeline pipeline;
  AnalysisProgram analysis;
  std::unique_ptr<sim::EgressPort> port;
};

std::vector<Packet> congested_traffic(Duration duration_ns,
                                      std::uint64_t seed) {
  traffic::PacketTraceConfig cfg;
  cfg.duration_ns = duration_ns;
  cfg.seed = seed;
  return traffic::generate_uw_trace(cfg);
}

TEST(FailureInjection, SlowPollingLosesOldDataButNeverFabricates) {
  // Poll 8x slower than the set period: most history ages out before it
  // can be checkpointed. Queries into the gaps return partial or empty
  // results; whatever *is* returned must still be real (precision holds up
  // far better than recall).
  AnalysisConfig slow;
  slow.poll_period_ns = 8 * core::TtsLayout(small_config().windows)
                                .set_period_ns();
  Rig rig(slow);
  rig.port->run(congested_traffic(5'000'000, 3));
  rig.analysis.finalize(rig.port->stats().last_departure + 1);
  ground::GroundTruth truth(rig.port->records());

  Rng rng(1);
  const auto victims = ground::sample_victims(rig.port->records(),
                                              {{500, 25000}}, 60, rng);
  ASSERT_GT(victims.size(), 10u);
  pq::OnlineStats precision, recall;
  for (const auto& v : victims) {
    const auto gt = truth.direct_culprits(v.record.enq_timestamp,
                                          v.record.deq_timestamp());
    if (gt.empty()) continue;
    const auto est = rig.analysis.query_time_windows(
        0, v.record.enq_timestamp, v.record.deq_timestamp());
    const auto pr = ground::flow_count_accuracy(est, gt);
    precision.add(est.empty() ? 1.0 : pr.precision);  // empty = no claim
    recall.add(pr.recall);
  }
  EXPECT_GT(precision.mean(), 0.5);
  EXPECT_LT(recall.mean(), 0.6);  // gaps genuinely lose history
}

TEST(FailureInjection, DqStormOnlyOneCaptureAtATime) {
  // Every packet exceeds the delay threshold: triggers storm. The lock
  // must serialise captures (at most one per read window) and never wedge.
  core::PipelineConfig pcfg = small_config();
  pcfg.dq_delay_threshold_ns = 1;  // everything triggers
  AnalysisConfig acfg;
  acfg.dq_read_time_ns = 100'000;  // 100 us per read
  Rig rig(acfg, pcfg);
  rig.port->run(congested_traffic(3'000'000, 5));
  rig.analysis.finalize(rig.port->stats().last_departure + 1);

  const auto captures = rig.analysis.dq_captures(0).size();
  EXPECT_GT(captures, 5u);
  // With a 100 us lock over a ~3 ms congested run, captures are bounded
  // by the read rate, not the packet rate.
  EXPECT_LT(captures, 60u);
  EXPECT_GT(rig.pipeline.dq_triggers_ignored(), 1000u);
  EXPECT_FALSE(rig.pipeline.windows().dataplane_query_locked());
}

TEST(FailureInjection, TrafficStopsMidRunTailIsStillQueryable) {
  // Traffic halts abruptly; finalize must checkpoint the tail so queries
  // just before the stop still answer.
  Rig rig(AnalysisConfig{});
  auto pkts = congested_traffic(2'000'000, 7);
  rig.port->run(std::move(pkts));
  rig.analysis.finalize(rig.port->stats().last_departure + 1);
  ground::GroundTruth truth(rig.port->records());

  // Victim among the last packets.
  const auto& recs = rig.port->records();
  const auto& victim = recs[recs.size() - 50];
  const auto gt = truth.direct_culprits(victim.enq_timestamp,
                                        victim.deq_timestamp());
  if (gt.empty()) GTEST_SKIP() << "tail victim saw no queuing";
  const auto est = rig.analysis.query_time_windows(
      0, victim.enq_timestamp, victim.deq_timestamp());
  EXPECT_FALSE(est.empty());
}

TEST(FailureInjection, QueriesOutsideAllCoverageReturnEmpty) {
  Rig rig(AnalysisConfig{});
  rig.port->run(congested_traffic(1'000'000, 9));
  rig.analysis.finalize(rig.port->stats().last_departure + 1);
  // Far in the future: nothing fabricated.
  const auto est = rig.analysis.query_time_windows(0, 50'000'000,
                                                   60'000'000);
  EXPECT_TRUE(est.empty());
}

TEST(FailureInjection, MonitorQueryWithNoSnapshotsIsEmpty) {
  Rig rig(AnalysisConfig{});
  EXPECT_TRUE(rig.analysis.query_queue_monitor(0, 1000).empty());
}

}  // namespace
}  // namespace pq::control
