#include "control/resource_model.h"

#include <gtest/gtest.h>

namespace pq::control {
namespace {

core::TimeWindowParams params(std::uint32_t alpha, std::uint32_t k,
                              std::uint32_t T,
                              std::uint32_t ports = 1) {
  core::TimeWindowParams p;
  p.m0 = 6;
  p.alpha = alpha;
  p.k = k;
  p.num_windows = T;
  p.num_ports = ports;
  return p;
}

TEST(ResourceModel, SramBudgetIsTofinoScale) {
  // 12 stages x 80 blocks x 16 KB = 15.36 MB.
  EXPECT_EQ(TofinoResourceModel::kTotalSramBytes, 15'728'640u);
  EXPECT_DOUBLE_EQ(TofinoResourceModel::sram_utilization(1'572'864), 0.1);
}

TEST(ResourceModel, PollingBandwidthMatchesClosedForm) {
  // alpha=1, k=12, T=4, m0=6: t_set = 15 * 2^18 ns ~ 3.93 ms;
  // bytes per poll = 4 * 4096 * 16 = 256 KiB -> ~63.6 MB/s.
  const double mbps = polling_mbytes_per_sec(params(1, 12, 4));
  EXPECT_NEAR(mbps, 256.0 / 1024.0 / (15.0 * 262144e-9), 0.5);
  EXPECT_NEAR(mbps, 63.6, 1.5);
}

TEST(ResourceModel, LargerAlphaNeedsLessBandwidth) {
  EXPECT_GT(polling_mbytes_per_sec(params(1, 12, 4)),
            polling_mbytes_per_sec(params(2, 12, 4)));
  EXPECT_GT(polling_mbytes_per_sec(params(2, 12, 4)),
            polling_mbytes_per_sec(params(3, 12, 4)));
}

TEST(ResourceModel, MoreWindowsNeedLessBandwidth) {
  // Each extra window extends the set period exponentially while adding
  // only linear data: polling gets cheaper.
  EXPECT_GT(polling_mbytes_per_sec(params(2, 12, 3)),
            polling_mbytes_per_sec(params(2, 12, 4)));
  EXPECT_GT(polling_mbytes_per_sec(params(2, 12, 4)),
            polling_mbytes_per_sec(params(2, 12, 5)));
}

TEST(ResourceModel, KDoesNotAffectFeasibility) {
  // Paper Section 7.1: k multiplies both the set period and the register
  // count, so polling bandwidth is unchanged.
  EXPECT_NEAR(polling_mbytes_per_sec(params(2, 11, 4)),
              polling_mbytes_per_sec(params(2, 12, 4)), 1e-9);
}

TEST(ResourceModel, PortsScaleBandwidthLinearly) {
  EXPECT_NEAR(polling_mbytes_per_sec(params(2, 12, 4, 4)),
              4.0 * polling_mbytes_per_sec(params(2, 12, 4, 1)), 1e-9);
}

TEST(ResourceModel, FeasibilityAgainstDataExchangeLimit) {
  // alpha=1, T=3 polls too fast (~509 MB/s); alpha=2, T=4 fits.
  EXPECT_FALSE(polling_feasible(params(1, 12, 3)));
  EXPECT_TRUE(polling_feasible(params(2, 12, 4)));
}

TEST(ResourceModel, LinearStorageScalesWithDuration) {
  EXPECT_EQ(linear_storage_bytes(1'000'000, 100.0), 160'000u);
  EXPECT_EQ(linear_storage_bytes(2'000'000, 100.0),
            2 * linear_storage_bytes(1'000'000, 100.0));
}

TEST(ResourceModel, ExponentialStorageUsesMinimalWindowPrefix) {
  const auto p = params(1, 12, 4);
  // Duration within window 0's period: one window's cells.
  EXPECT_EQ(exponential_storage_bytes(p, 1000), 4096u * 16);
  // Duration requiring all four windows.
  const core::TtsLayout layout(p);
  EXPECT_EQ(exponential_storage_bytes(p, layout.set_period_ns()),
            4u * 4096 * 16);
}

TEST(ResourceModel, RatioGrowsWithCoveredDuration) {
  const auto p = params(2, 12, 4);
  const double r1 = linear_exponential_ratio(p, 1u << 19, 110.0);
  const double r2 = linear_exponential_ratio(p, 1u << 22, 110.0);
  const double r3 = linear_exponential_ratio(p, 1u << 25, 110.0);
  EXPECT_LT(r1, r2);
  EXPECT_LT(r2, r3);
}

TEST(ResourceModel, RatioReachesOrdersOfMagnitude) {
  // Paper Fig. 14(a): up to three orders of magnitude advantage.
  const auto p = params(3, 12, 5);
  const core::TtsLayout layout(p);
  const double r =
      linear_exponential_ratio(p, layout.set_period_ns(), 110.0);
  EXPECT_GT(r, 100.0);
}

TEST(ResourceModel, MauStagesMatchPaperPrototype) {
  // The paper's T=4 prototype: 4 preparation stages + 2 per window = 12,
  // exactly filling a Tofino pipeline; the monitor's 6 overlap.
  const auto u = mau_stage_usage(params(2, 12, 4));
  EXPECT_EQ(u.window_stages, 12u);
  EXPECT_EQ(u.monitor_stages, 6u);
  EXPECT_EQ(u.total, 12u);
  EXPECT_TRUE(stages_feasible(params(2, 12, 4)));
}

TEST(ResourceModel, FiveWindowsExceedTwelveStages) {
  EXPECT_FALSE(stages_feasible(params(1, 12, 5)));
  EXPECT_TRUE(stages_feasible(params(1, 12, 5), 16));
}

TEST(ResourceModel, FewWindowsBoundedByMonitorStages) {
  EXPECT_EQ(mau_stage_usage(params(1, 12, 1)).total, 6u);
}

}  // namespace
}  // namespace pq::control
