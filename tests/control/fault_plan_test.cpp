// Properties of the deterministic fault-injection subsystem and the
// hardened consumers behind it. Two contracts are pinned down here:
//
//   Reproducibility — the same FaultPlan seed over the same workload fires
//   the byte-identical fault schedule and yields identical HealthStats.
//
//   Degradation — under loss, corruption and torn register reads, answers
//   may shrink (recall drops) but every flow a delivered answer names must
//   exist in the real traffic: the fault path can starve the reader, it
//   cannot make it fabricate.
#include <gtest/gtest.h>

#include <cstdlib>
#include <set>

#include "common/rng.h"
#include "control/analysis_program.h"
#include "control/query_client.h"
#include "control/query_service.h"
#include "faults/fault_plan.h"
#include "ground/ground_truth.h"
#include "sim/egress_port.h"
#include "traffic/trace_gen.h"

namespace pq::control {
namespace {

core::PipelineConfig small_config() {
  core::PipelineConfig cfg;
  cfg.windows.m0 = 6;
  cfg.windows.alpha = 1;
  cfg.windows.k = 8;
  cfg.windows.num_windows = 3;
  cfg.monitor.max_depth_cells = 25000;
  return cfg;
}

std::vector<Packet> congested_traffic(Duration duration_ns,
                                      std::uint64_t seed) {
  traffic::PacketTraceConfig cfg;
  cfg.duration_ns = duration_ns;
  cfg.seed = seed;
  return traffic::generate_uw_trace(cfg);
}

/// One faulted end-to-end stack: traffic -> (storm/skew interposers) ->
/// pipeline -> analysis (with torn-read seam) -> service -> lossy channels
/// -> retrying client.
struct FaultedRig {
  explicit FaultedRig(const faults::FaultPlanConfig& fcfg,
                      AnalysisConfig acfg = {})
      : plan(fcfg), pipeline(small_config()),
        analysis((pipeline.enable_port(0), pipeline), acfg),
        service(analysis),
        client(make_lossy_transport(service, plan)) {
    analysis.set_read_faults(&plan.torn_reads());
    port = std::make_unique<sim::EgressPort>(sim::PortConfig{});
    port->add_hook(plan.attach_egress_chain(&pipeline));
  }

  void run(Duration duration_ns, std::uint64_t traffic_seed) {
    port->run(congested_traffic(duration_ns, traffic_seed));
    analysis.finalize(port->stats().last_departure + 1);
  }

  HealthStats total_health() const {
    return analysis.health() + service.health() + client.health();
  }

  faults::FaultPlan plan;
  core::PrintQueuePipeline pipeline;
  AnalysisProgram analysis;
  QueryService service;
  QueryClient client;
  std::unique_ptr<sim::EgressPort> port;
};

faults::FaultPlanConfig stress_config(std::uint64_t seed) {
  faults::FaultPlanConfig f;
  f.seed = seed;
  f.torn_reads.probability = 0.25;
  f.request_channel.drop_rate = 0.10;
  f.request_channel.corrupt_rate = 0.05;
  f.request_channel.duplicate_rate = 0.05;
  f.response_channel.drop_rate = 0.10;
  f.response_channel.corrupt_rate = 0.05;
  f.response_channel.reorder_rate = 0.05;
  return f;
}

/// Issues a fixed batch of interval and monitor queries through the lossy
/// client; returns every delivered response.
std::vector<QueryResponse> run_query_batch(FaultedRig& rig) {
  std::vector<QueryResponse> delivered;
  const Timestamp end = rig.port->stats().last_departure;
  for (int i = 0; i < 20; ++i) {
    QueryRequest req;
    req.type = QueryType::kTimeWindows;
    req.t1 = end * i / 25;
    req.t2 = end * (i + 2) / 25;
    const auto r = rig.client.query(req);
    if (r.delivered) delivered.push_back(r.response);
  }
  for (int i = 0; i < 10; ++i) {
    QueryRequest req;
    req.type = QueryType::kQueueMonitor;
    req.t1 = end * i / 10;
    const auto r = rig.client.query(req);
    if (r.delivered) delivered.push_back(r.response);
  }
  return delivered;
}

bool is_fabricated(const FlowId& f) {
  return (f.src_ip & 0xFFF00000u) ==
         faults::TornReadInjector::kFabricatedSrcPrefix;
}

TEST(FaultPlan, SameSeedReproducesScheduleAndHealthByteForByte) {
  auto run_once = [](std::uint64_t seed) {
    FaultedRig rig(stress_config(seed));
    rig.run(2'000'000, 11);
    run_query_batch(rig);
    return std::make_pair(rig.plan.serialize_schedule(), rig.total_health());
  };
  const auto [schedule_a, health_a] = run_once(42);
  const auto [schedule_b, health_b] = run_once(42);
  EXPECT_FALSE(schedule_a.empty());
  EXPECT_EQ(schedule_a, schedule_b);
  EXPECT_EQ(health_a, health_b);

  // A different seed must produce a different firing sequence (the streams
  // are seed-derived, not workload-derived).
  const auto [schedule_c, health_c] = run_once(43);
  EXPECT_NE(schedule_a, schedule_c);
}

TEST(FaultPlan, TornReadsAreDetectedRetriedAndCounted) {
  faults::FaultPlanConfig f;
  f.seed = 7;
  f.torn_reads.probability = 0.5;
  FaultedRig rig(f);
  rig.run(2'000'000, 13);

  const auto& h = rig.analysis.health();
  EXPECT_GT(rig.plan.torn_reads().tears_injected(), 0u);
  EXPECT_EQ(h.torn_reads_detected, rig.plan.torn_reads().tears_injected());
  EXPECT_GT(h.torn_read_retries, 0u);
  EXPECT_GT(h.backoff_ns_spent, 0u);

  // Retries succeed often enough at p=0.5 that history survives, and no
  // scrambled cell may leak into a kept snapshot.
  for (const auto& snap : rig.analysis.window_snapshots(0)) {
    for (const auto& window : snap.state) {
      for (const auto& cell : window) {
        if (cell.occupied) {
          EXPECT_FALSE(is_fabricated(cell.flow));
        }
      }
    }
  }
}

TEST(FaultPlan, CertainTearingAbandonsEverySnapshotButNeverFabricates) {
  faults::FaultPlanConfig f;
  f.seed = 3;
  f.torn_reads.probability = 1.0;  // every read and every retry is torn
  FaultedRig rig(f);
  rig.run(1'000'000, 17);

  const auto& h = rig.analysis.health();
  EXPECT_GT(h.snapshots_abandoned, 0u);
  EXPECT_TRUE(rig.analysis.window_snapshots(0).empty());
  EXPECT_TRUE(rig.analysis.monitor_snapshots(0).empty());

  // The service must answer with an explicit empty/partial result, not a
  // fabricated one.
  const auto answer = rig.analysis.query_time_windows_detail(
      0, 0, rig.port->stats().last_departure);
  EXPECT_TRUE(answer.counts.empty());
  EXPECT_EQ(answer.coverage, 0.0);
}

TEST(FaultPlan, PrecisionHoldsAcrossSeedsUnderLossCorruptionAndTears) {
  // The ISSUE acceptance bar: 10% loss, 5% corruption, torn reads, >= 5
  // seeds — every delivered answer carries only flows that exist in the
  // real traffic, zero fabricated entries, and a valid status.
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    FaultedRig rig(stress_config(seed));
    rig.run(2'000'000, 100 + seed);

    std::set<FlowId> real_flows;
    for (const auto& rec : rig.port->records()) real_flows.insert(rec.flow);

    const auto delivered = run_query_batch(rig);
    EXPECT_FALSE(delivered.empty()) << "seed " << seed;
    for (const auto& resp : delivered) {
      EXPECT_TRUE(resp.status == QueryStatus::kOk ||
                  resp.status == QueryStatus::kPartial)
          << "seed " << seed;
      for (const auto& [flow, n] : resp.counts) {
        EXPECT_FALSE(is_fabricated(flow)) << "seed " << seed;
        EXPECT_TRUE(real_flows.count(flow)) << "seed " << seed;
      }
      for (const auto& c : resp.culprits) {
        EXPECT_FALSE(is_fabricated(c.flow)) << "seed " << seed;
        EXPECT_TRUE(real_flows.count(c.flow)) << "seed " << seed;
      }
    }
  }
}

TEST(FaultPlan, LossyChannelIsDeterministicPerSeed) {
  auto outcomes = [](std::uint64_t seed) {
    faults::LossyChannelConfig cfg;
    cfg.drop_rate = 0.2;
    cfg.duplicate_rate = 0.2;
    cfg.reorder_rate = 0.2;
    cfg.corrupt_rate = 0.2;
    faults::FaultLog log;
    faults::LossyChannel ch(cfg, seed, &log, faults::FaultSite::kRequestChannel);
    std::vector<std::vector<std::uint8_t>> arrived;
    for (std::uint8_t i = 0; i < 100; ++i) {
      const std::vector<std::uint8_t> msg{i, 1, 2, 3, 4, 5, 6, 7};
      for (auto& m : ch.transmit(msg)) arrived.push_back(std::move(m));
    }
    for (auto& m : ch.flush()) arrived.push_back(std::move(m));
    return arrived;
  };
  const auto a = outcomes(9);
  EXPECT_EQ(a, outcomes(9));
  EXPECT_NE(a, outcomes(10));
}

TEST(FaultPlan, ClockSkewIsBoundedAndPerPortStable) {
  faults::FaultPlanConfig f;
  f.seed = 5;
  f.clock_skew.max_abs_skew_ns = 500;
  faults::FaultPlan plan(f);
  plan.attach_egress_chain(nullptr);  // interposers are built on attach
  auto* skew = plan.clock_skew();
  ASSERT_NE(skew, nullptr);
  for (std::uint32_t port = 0; port < 16; ++port) {
    const auto off = skew->offset_ns(port);
    EXPECT_LE(std::llabs(off), 500);
    EXPECT_EQ(off, skew->offset_ns(port));  // fixed once drawn
  }
}

TEST(FaultPlan, TriggerStormForcesCapturesWithoutWedgingTheLock) {
  core::PipelineConfig pcfg = small_config();
  pcfg.dq_depth_threshold_cells = 1'000'000;  // unreachable organically

  faults::FaultPlanConfig f;
  f.seed = 21;
  f.trigger_storm.probability = 0.3;
  f.trigger_storm.forced_depth_cells = 1'000'001;
  faults::FaultPlan plan(f);

  core::PrintQueuePipeline pipeline(pcfg);
  pipeline.enable_port(0);
  AnalysisProgram analysis(pipeline, AnalysisConfig{});
  auto port = std::make_unique<sim::EgressPort>(sim::PortConfig{});
  port->add_hook(plan.attach_egress_chain(&pipeline));
  port->run(congested_traffic(2'000'000, 23));
  analysis.finalize(port->stats().last_departure + 1);

  EXPECT_GT(plan.trigger_storm()->triggers_forced(), 100u);
  EXPECT_FALSE(analysis.dq_captures(0).empty());
  EXPECT_FALSE(pipeline.windows().dataplane_query_locked());
}

}  // namespace
}  // namespace pq::control
