#include "control/register_records.h"

#include <gtest/gtest.h>

#include <optional>
#include <sstream>

#include "common/hash.h"
#include "sim/egress_port.h"
#include "traffic/trace_gen.h"
#include "wire/bytes.h"

namespace pq::control {
namespace {

struct Rig {
  Rig() {
    core::PipelineConfig cfg;
    cfg.windows.m0 = 6;
    cfg.windows.alpha = 1;
    cfg.windows.k = 8;
    cfg.windows.num_windows = 3;
    cfg.monitor.max_depth_cells = 25000;
    pipeline = std::make_unique<core::PrintQueuePipeline>(cfg);
    pipeline->enable_port(0);
    analysis = std::make_unique<AnalysisProgram>(*pipeline,
                                                 AnalysisConfig{});
    sim::PortConfig port_cfg;
    port = std::make_unique<sim::EgressPort>(port_cfg);
    port->add_hook(pipeline.get());
    traffic::PacketTraceConfig tcfg;
    tcfg.duration_ns = 3'000'000;
    tcfg.seed = 5;
    port->run(traffic::generate_uw_trace(tcfg));
    analysis->finalize(port->stats().last_departure + 1);
  }
  std::unique_ptr<core::PrintQueuePipeline> pipeline;
  std::unique_ptr<AnalysisProgram> analysis;
  std::unique_ptr<sim::EgressPort> port;
};

TEST(RegisterRecords, RoundTripsThroughStream) {
  Rig rig;
  const auto records = collect_records(*rig.pipeline, *rig.analysis);
  std::stringstream ss;
  write_records(ss, records);
  const auto back = read_records(ss);
  EXPECT_EQ(back.window_params.m0, records.window_params.m0);
  EXPECT_EQ(back.window_params.k, records.window_params.k);
  EXPECT_EQ(back.monitor_levels, records.monitor_levels);
  EXPECT_DOUBLE_EQ(back.z0, records.z0);
  ASSERT_EQ(back.window_snapshots.size(), records.window_snapshots.size());
  ASSERT_EQ(back.window_snapshots[0].size(),
            records.window_snapshots[0].size());
  // Spot-check full state equality of the last snapshot.
  const auto& a = records.window_snapshots[0].back().state;
  const auto& b = back.window_snapshots[0].back().state;
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t w = 0; w < a.size(); ++w) {
    ASSERT_EQ(a[w].size(), b[w].size());
    for (std::size_t j = 0; j < a[w].size(); ++j) {
      EXPECT_EQ(a[w][j].occupied, b[w][j].occupied);
      if (a[w][j].occupied) {
        EXPECT_EQ(a[w][j].flow, b[w][j].flow);
        EXPECT_EQ(a[w][j].cycle_id, b[w][j].cycle_id);
      }
    }
  }
}

TEST(RegisterRecords, OfflineQueriesMatchLiveAnalysisProgram) {
  Rig rig;
  const auto records = collect_records(*rig.pipeline, *rig.analysis);

  // Every live interval query must reproduce exactly offline.
  const auto& recs = rig.port->records();
  for (std::size_t i = 100; i < recs.size(); i += recs.size() / 7) {
    const Timestamp t1 = recs[i].enq_timestamp;
    const Timestamp t2 = recs[i].deq_timestamp();
    if (t2 <= t1) continue;
    const auto live = rig.analysis->query_time_windows(0, t1, t2);
    const auto offline = offline_query_time_windows(records, 0, t1, t2);
    ASSERT_EQ(live.size(), offline.size()) << "victim " << i;
    for (const auto& [flow, n] : live) {
      ASSERT_TRUE(offline.contains(flow));
      EXPECT_NEAR(offline.at(flow), n, 1e-9);
    }
  }

  const Timestamp mid = rig.port->stats().last_departure / 2;
  const auto live_mon = rig.analysis->query_queue_monitor(0, mid);
  const auto off_mon = offline_query_queue_monitor(records, 0, mid);
  ASSERT_EQ(live_mon.size(), off_mon.size());
  for (std::size_t i = 0; i < live_mon.size(); ++i) {
    EXPECT_EQ(live_mon[i].flow, off_mon[i].flow);
    EXPECT_EQ(live_mon[i].level, off_mon[i].level);
  }
}

TEST(RegisterRecords, FileRoundTrip) {
  Rig rig;
  const auto records = collect_records(*rig.pipeline, *rig.analysis);
  const std::string path = testing::TempDir() + "/pq_records_test.bin";
  write_records_file(path, records);
  const auto back = read_records_file(path);
  EXPECT_EQ(back.window_snapshots[0].size(),
            records.window_snapshots[0].size());
}

TEST(RegisterRecords, DetectsCorruption) {
  Rig rig;
  std::stringstream ss;
  write_records(ss, collect_records(*rig.pipeline, *rig.analysis));
  std::string data = ss.str();
  data[data.size() / 2] ^= 0x40;
  std::stringstream bad(data);
  EXPECT_THROW(read_records(bad), std::runtime_error);
}

TEST(RegisterRecords, DetectsTruncation) {
  Rig rig;
  std::stringstream ss;
  write_records(ss, collect_records(*rig.pipeline, *rig.analysis));
  std::string data = ss.str();
  std::stringstream bad(data.substr(0, data.size() / 3));
  EXPECT_THROW(read_records(bad), std::runtime_error);
}

// --- Typed error codes ---------------------------------------------------
// Each read-path failure mode maps to exactly one RecordsErrorCode, so
// callers can branch on code() instead of string-matching what(). These
// tests hand-craft byte streams around a minimal (empty) bundle; the
// checksum is recomputed so each case isolates its own failure.

/// A minimal valid bundle's bytes, checksum stripped.
std::vector<std::uint8_t> minimal_payload() {
  std::stringstream ss;
  write_records(ss, RegisterRecords{});
  const std::string s = ss.str();
  return {s.begin(), s.end() - 8};
}

/// Re-checksums `payload`, decodes it, and returns the typed error (or
/// nullopt if the decode succeeded).
std::optional<RecordsErrorCode> decode_error(
    std::vector<std::uint8_t> payload) {
  wire::put_u64(payload, fnv1a(payload.data(), payload.size()));
  std::stringstream in(std::string(payload.begin(), payload.end()));
  try {
    read_records(in);
  } catch (const RecordsError& e) {
    return e.code();
  }
  return std::nullopt;
}

// Byte offset of the first count field (window port count): magic + the
// fixed header (m0, alpha, k, T, ports: 5×u32, wrap32 u8, levels u32,
// z0 f64).
constexpr std::size_t kHeaderBytes = 4 + 5 * 4 + 1 + 4 + 8;

TEST(RegisterRecordsErrors, MinimalBundleDecodes) {
  EXPECT_EQ(decode_error(minimal_payload()), std::nullopt);
}

TEST(RegisterRecordsErrors, ChecksumMismatch) {
  // A flipped payload byte with the stale checksum left in place.
  std::stringstream ss;
  write_records(ss, RegisterRecords{});
  std::string data = ss.str();
  data[kHeaderBytes / 2] ^= 0x10;
  std::stringstream in(data);
  try {
    read_records(in);
    FAIL() << "decode accepted a corrupt bundle";
  } catch (const RecordsError& e) {
    EXPECT_EQ(e.code(), RecordsErrorCode::kChecksumMismatch);
  }
}

TEST(RegisterRecordsErrors, BadMagic) {
  auto payload = minimal_payload();
  payload[0] ^= 0xFF;
  EXPECT_EQ(decode_error(std::move(payload)), RecordsErrorCode::kBadMagic);
}

TEST(RegisterRecordsErrors, TruncatedMidHeader) {
  auto payload = minimal_payload();
  payload.resize(kHeaderBytes / 2);
  EXPECT_EQ(decode_error(std::move(payload)), RecordsErrorCode::kTruncated);
}

TEST(RegisterRecordsErrors, OversizedCountRejectedBeforeAllocation) {
  // A port count promising far more elements than the stream holds must be
  // rejected up front, not discovered after a giant resize.
  auto payload = minimal_payload();
  payload.resize(kHeaderBytes);
  wire::put_u32(payload, 0x00FFFFFF);
  EXPECT_EQ(decode_error(std::move(payload)),
            RecordsErrorCode::kOversizedField);
}

TEST(RegisterRecordsErrors, TrailingBytesRejected) {
  // A well-formed bundle followed by unconsumed (but checksummed) bytes.
  auto payload = minimal_payload();
  payload.insert(payload.end(), {0xDE, 0xAD, 0xBE, 0xEF});
  EXPECT_EQ(decode_error(std::move(payload)),
            RecordsErrorCode::kTrailingBytes);
}

TEST(RegisterRecordsErrors, FileIoErrorsAreTyped) {
  try {
    read_records_file("/nonexistent/pq-records.pqr");
    FAIL() << "read of a missing file succeeded";
  } catch (const RecordsError& e) {
    EXPECT_EQ(e.code(), RecordsErrorCode::kIoError);
  }
  try {
    write_records_file("/nonexistent/pq-records.pqr", RegisterRecords{});
    FAIL() << "write into a missing directory succeeded";
  } catch (const RecordsError& e) {
    EXPECT_EQ(e.code(), RecordsErrorCode::kIoError);
  }
}

}  // namespace
}  // namespace pq::control
