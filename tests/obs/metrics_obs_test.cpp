// Unit coverage for pq::obs: histogram bucket boundaries, counter overflow,
// deterministic cross-shard merge, and the JSON/Prometheus round trip. These
// tests pin the contracts docs/OBSERVABILITY.md documents; the sharded
// determinism integration test builds on them.
#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <limits>
#include <numeric>
#include <random>
#include <stdexcept>
#include <string>
#include <vector>

#if PQ_METRICS_ENABLED

namespace pq::obs {
namespace {

// --- counters --------------------------------------------------------------

TEST(CounterTest, IncrementsAndMerges) {
  Counter a;
  EXPECT_EQ(a.value(), 0u);
  a.inc();
  a.inc(41);
  EXPECT_EQ(a.value(), 42u);

  Counter b;
  b.inc(8);
  a.merge(b);
  EXPECT_EQ(a.value(), 50u);
}

TEST(CounterTest, OverflowWrapsModulo2To64) {
  Counter c;
  c.inc(std::numeric_limits<std::uint64_t>::max());
  c.inc(1);
  EXPECT_EQ(c.value(), 0u);
  c.inc(7);
  EXPECT_EQ(c.value(), 7u);

  // Merge wraps the same way — the sum of shard counters is well defined
  // even at the extreme.
  Counter hi;
  hi.inc(std::numeric_limits<std::uint64_t>::max());
  c.merge(hi);
  EXPECT_EQ(c.value(), 6u);
}

// --- gauges ----------------------------------------------------------------

TEST(GaugeTest, MaxModeKeepsHighWatermark) {
  Gauge g(GaugeMode::kMax);
  g.set_max(10);
  g.set_max(3);
  EXPECT_EQ(g.value(), 10u);

  Gauge other(GaugeMode::kMax);
  other.set_max(25);
  g.merge(other);
  EXPECT_EQ(g.value(), 25u);
}

TEST(GaugeTest, SumModeAddsAcrossShards) {
  Gauge g(GaugeMode::kSum);
  g.set(100);
  Gauge other(GaugeMode::kSum);
  other.set(50);
  g.merge(other);
  EXPECT_EQ(g.value(), 150u);
}

// --- histogram bucket boundaries ------------------------------------------

TEST(HistogramTest, BucketBoundariesFollowBitWidth) {
  // bucket 0 = {0}, bucket 1 = {1}, bucket i = [2^(i-1), 2^i - 1].
  EXPECT_EQ(Histogram::bucket_of(0), 0u);
  EXPECT_EQ(Histogram::bucket_of(1), 1u);
  EXPECT_EQ(Histogram::bucket_of(2), 2u);
  EXPECT_EQ(Histogram::bucket_of(3), 2u);
  EXPECT_EQ(Histogram::bucket_of(4), 3u);
  EXPECT_EQ(Histogram::bucket_of(7), 3u);
  EXPECT_EQ(Histogram::bucket_of(8), 4u);

  // Every power of two opens a new bucket; its predecessor closes one.
  for (std::size_t i = 1; i < 64; ++i) {
    const std::uint64_t pow2 = 1ull << i;
    EXPECT_EQ(Histogram::bucket_of(pow2), i + 1) << "2^" << i;
    EXPECT_EQ(Histogram::bucket_of(pow2 - 1), i) << "2^" << i << " - 1";
  }
  EXPECT_EQ(Histogram::bucket_of(std::numeric_limits<std::uint64_t>::max()),
            64u);
}

TEST(HistogramTest, BucketUppersAreInclusiveBounds) {
  EXPECT_EQ(Histogram::bucket_upper(0), 0u);
  EXPECT_EQ(Histogram::bucket_upper(1), 1u);
  EXPECT_EQ(Histogram::bucket_upper(2), 3u);
  EXPECT_EQ(Histogram::bucket_upper(3), 7u);
  EXPECT_EQ(Histogram::bucket_upper(64),
            std::numeric_limits<std::uint64_t>::max());
  for (std::size_t i = 0; i < Histogram::kBuckets; ++i) {
    // A bucket's upper bound maps back into that bucket...
    EXPECT_EQ(Histogram::bucket_of(Histogram::bucket_upper(i)), i);
    // ...and one past it maps into the next.
    if (i < 64) {
      EXPECT_EQ(Histogram::bucket_of(Histogram::bucket_upper(i) + 1), i + 1);
    }
  }
}

TEST(HistogramTest, ObserveTracksAggregates) {
  Histogram h;
  h.observe(5);
  h.observe(100);
  h.observe(0);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.sum(), 105u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 100u);
  EXPECT_EQ(h.bucket_count(Histogram::bucket_of(5)), 1u);
  EXPECT_EQ(h.bucket_count(Histogram::bucket_of(100)), 1u);
  EXPECT_EQ(h.bucket_count(0), 1u);
}

TEST(HistogramTest, QuantileWalksCumulativeCounts) {
  Histogram h;
  for (int i = 0; i < 90; ++i) h.observe(10);   // bucket 4, upper 15
  for (int i = 0; i < 10; ++i) h.observe(1000); // bucket 10, upper 1023
  EXPECT_EQ(h.quantile(0.5), 15u);
  // The p99 falls in the tail bucket; it is clamped by the observed max.
  EXPECT_EQ(h.quantile(0.99), 1000u);
  EXPECT_EQ(h.quantile(0.0), 15u);
}

TEST(HistogramTest, MergeAddsBucketsAndCombinesAggregates) {
  Histogram a, b;
  a.observe(4);
  a.observe(6);
  b.observe(1);
  b.observe(1 << 20);
  a.merge(b);
  EXPECT_EQ(a.count(), 4u);
  EXPECT_EQ(a.sum(), 4u + 6u + 1u + (1u << 20));
  EXPECT_EQ(a.min(), 1u);
  EXPECT_EQ(a.max(), 1u << 20);
  EXPECT_EQ(a.bucket_count(3), 2u);  // 4 and 6 share [4,7]
  EXPECT_EQ(a.bucket_count(1), 1u);
  EXPECT_EQ(a.bucket_count(21), 1u);
}

// --- registry semantics ----------------------------------------------------

TEST(RegistryTest, ReturnsStableReferencesByName) {
  MetricsRegistry reg;
  Counter& c1 = reg.counter("pq_test_total");
  Counter& c2 = reg.counter("pq_test_total");
  EXPECT_EQ(&c1, &c2);
  c1.inc(3);
  EXPECT_EQ(reg.counter_value("pq_test_total"), 3u);
}

TEST(RegistryTest, TypeMismatchThrows) {
  MetricsRegistry reg;
  reg.counter("pq_test_total");
  EXPECT_THROW(reg.gauge("pq_test_total"), std::logic_error);
  EXPECT_THROW(reg.histogram("pq_test_total"), std::logic_error);
  EXPECT_THROW(reg.gauge_value("pq_test_total"), std::logic_error);
  EXPECT_THROW((void)reg.counter_value("pq_missing"), std::out_of_range);
}

// Builds a synthetic shard registry with all three metric kinds; `shard`
// varies the values so merges are non-trivial.
MetricsRegistry make_shard(std::uint64_t shard) {
  MetricsRegistry reg;
  reg.counter("pq_test_packets_total").inc(100 + shard);
  reg.gauge("pq_test_peak_depth", GaugeMode::kMax).set_max(10 * (shard + 1));
  reg.gauge("pq_test_sram_bytes", GaugeMode::kSum).set(4096);
  Histogram& h = reg.histogram("pq_test_latency_ns");
  for (std::uint64_t i = 0; i <= shard; ++i) h.observe(1ull << (i + 4));
  reg.counter("pq_test_drain_ns_total", "", /*timing=*/true).inc(777 * shard);
  return reg;
}

TEST(RegistryTest, MergeMatchesHandComputedTotals) {
  MetricsRegistry merged;
  for (std::uint64_t s = 0; s < 4; ++s) merged.merge(make_shard(s));
  EXPECT_EQ(merged.counter_value("pq_test_packets_total"),
            100u + 101u + 102u + 103u);
  EXPECT_EQ(merged.gauge_value("pq_test_peak_depth"), 40u);   // max
  EXPECT_EQ(merged.gauge_value("pq_test_sram_bytes"), 4u * 4096u);  // sum
  EXPECT_EQ(merged.histogram_at("pq_test_latency_ns").count(),
            1u + 2u + 3u + 4u);
}

// The determinism contract: merging the same shard registries in ANY
// grouping and order yields byte-identical serialized output. This is what
// lets a 1-thread and an 8-thread run agree.
TEST(RegistryTest, MergeIsOrderAndGroupingInvariant) {
  constexpr std::uint64_t kShards = 8;
  auto merge_in_order = [](const std::vector<std::uint64_t>& order) {
    MetricsRegistry merged;
    for (const auto s : order) merged.merge(make_shard(s));
    return merged.to_json();
  };

  std::vector<std::uint64_t> order(kShards);
  std::iota(order.begin(), order.end(), 0);
  const std::string forward = merge_in_order(order);

  std::reverse(order.begin(), order.end());
  EXPECT_EQ(merge_in_order(order), forward);

  std::mt19937 rng(2024);
  for (int trial = 0; trial < 5; ++trial) {
    std::shuffle(order.begin(), order.end(), rng);
    EXPECT_EQ(merge_in_order(order), forward) << "trial " << trial;
  }

  // Tree-shaped grouping (how a worker pool with 2 or 4 threads would
  // combine partial merges) agrees with the flat left fold.
  MetricsRegistry left, right;
  for (std::uint64_t s = 0; s < kShards / 2; ++s) left.merge(make_shard(s));
  for (std::uint64_t s = kShards / 2; s < kShards; ++s) {
    right.merge(make_shard(s));
  }
  left.merge(right);
  EXPECT_EQ(left.to_json(), forward);
}

TEST(RegistryTest, TimingViewOmitsWallClockMetrics) {
  MetricsRegistry reg = make_shard(1);
  const std::string full = reg.to_json(IncludeTimings::kYes);
  const std::string det = reg.to_json(IncludeTimings::kNo);
  EXPECT_NE(full.find("pq_test_drain_ns_total"), std::string::npos);
  EXPECT_EQ(det.find("pq_test_drain_ns_total"), std::string::npos);
  EXPECT_NE(det.find("pq_test_packets_total"), std::string::npos);

  const std::string prom = reg.to_prometheus(IncludeTimings::kNo);
  EXPECT_EQ(prom.find("pq_test_drain_ns_total"), std::string::npos);
}

// --- serialization round trips ---------------------------------------------

TEST(RegistryTest, JsonRoundTripIsByteExact) {
  MetricsRegistry merged;
  for (std::uint64_t s = 0; s < 3; ++s) merged.merge(make_shard(s));
  const std::string once = merged.to_json();
  const MetricsRegistry back = MetricsRegistry::from_json(once);
  EXPECT_EQ(back.to_json(), once);

  // Values survive, not just bytes.
  EXPECT_EQ(back.counter_value("pq_test_packets_total"),
            merged.counter_value("pq_test_packets_total"));
  EXPECT_EQ(back.gauge_value("pq_test_peak_depth"),
            merged.gauge_value("pq_test_peak_depth"));
  const Histogram& h = back.histogram_at("pq_test_latency_ns");
  EXPECT_EQ(h.count(), merged.histogram_at("pq_test_latency_ns").count());
  EXPECT_EQ(h.sum(), merged.histogram_at("pq_test_latency_ns").sum());
  EXPECT_EQ(h.min(), merged.histogram_at("pq_test_latency_ns").min());
  EXPECT_EQ(h.max(), merged.histogram_at("pq_test_latency_ns").max());
}

TEST(RegistryTest, FromJsonRejectsMalformedInput) {
  EXPECT_THROW(MetricsRegistry::from_json("not json"),
               std::invalid_argument);
  EXPECT_THROW(MetricsRegistry::from_json("{\"metrics\":["),
               std::invalid_argument);
  EXPECT_THROW(
      MetricsRegistry::from_json(
          "{\"metrics\":[{\"name\":\"x\",\"type\":\"tuba\",\"timing\":0}]}"),
      std::invalid_argument);
}

TEST(RegistryTest, PrometheusExpositionShape) {
  MetricsRegistry reg;
  reg.counter("pq_test_packets_total", "packets").inc(12);
  reg.gauge("pq_test_depth", GaugeMode::kMax, "depth").set_max(7);
  Histogram& h = reg.histogram("pq_test_ns", "latency");
  h.observe(3);
  h.observe(900);

  const std::string prom = reg.to_prometheus();
  EXPECT_NE(prom.find("# HELP pq_test_packets_total packets"),
            std::string::npos);
  EXPECT_NE(prom.find("# TYPE pq_test_packets_total counter"),
            std::string::npos);
  EXPECT_NE(prom.find("pq_test_packets_total 12"), std::string::npos);
  EXPECT_NE(prom.find("# TYPE pq_test_depth gauge"), std::string::npos);
  EXPECT_NE(prom.find("pq_test_depth 7"), std::string::npos);
  EXPECT_NE(prom.find("# TYPE pq_test_ns histogram"), std::string::npos);
  // Cumulative buckets: the 900 sample (bucket 10, upper 1023) must be
  // included in the le="1023" count together with the 3 sample.
  EXPECT_NE(prom.find("pq_test_ns_bucket{le=\"1023\"} 2"),
            std::string::npos);
  EXPECT_NE(prom.find("pq_test_ns_bucket{le=\"+Inf\"} 2"),
            std::string::npos);
  EXPECT_NE(prom.find("pq_test_ns_sum 903"), std::string::npos);
  EXPECT_NE(prom.find("pq_test_ns_count 2"), std::string::npos);
}

}  // namespace
}  // namespace pq::obs

#else  // !PQ_METRICS_ENABLED

// The OFF build still compiles this test binary; the stub API must accept
// the same call shapes and return zeros.
TEST(MetricsStubTest, StubsAreInertButCallable) {
  pq::obs::MetricsRegistry reg;
  reg.counter("pq_x_total").inc(5);
  reg.gauge("pq_x_depth").set_max(9);
  reg.histogram("pq_x_ns").observe(123);
  EXPECT_EQ(reg.size(), 0u);
  EXPECT_EQ(reg.counter_value("pq_x_total"), 0u);
  EXPECT_EQ(reg.to_json(), "{\"metrics\":[]}\n");
}

#endif  // PQ_METRICS_ENABLED
