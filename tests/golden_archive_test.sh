#!/usr/bin/env bash
# Golden-file end-to-end test for pq::store: replay the committed trace
# fixture with --archive-dir alongside --save-records, then answer the same
# culprit queries twice — pq_query against the archive, pq_offline against
# the one-shot records bundle — and require byte-identical bodies (the first
# line of each tool is its own header and is stripped). This is the
# retroactive-query contract of docs/STORAGE.md: an archive answers exactly
# what the live collect/analyze path would have.
#
# The replay runs batched and multi-threaded, so the comparison also
# re-checks the archive determinism contract end to end through the CLI.
#
# $1 is the directory holding the pq_* binaries (a build root is accepted
# and resolved to its tools/ subdirectory); $2 is tests/data/.
set -euo pipefail

TOOLS_DIR="${1:?usage: golden_archive_test.sh <tools-dir-or-build-dir> <data-dir>}"
DATA_DIR="${2:?usage: golden_archive_test.sh <tools-dir-or-build-dir> <data-dir>}"
if [[ ! -x "$TOOLS_DIR/pq_replay" && -x "$TOOLS_DIR/tools/pq_replay" ]]; then
  TOOLS_DIR="$TOOLS_DIR/tools"
fi
if [[ ! -x "$TOOLS_DIR/pq_query" ]]; then
  echo "pq_query not found under '$1'" >&2
  exit 2
fi
TRACE="$DATA_DIR/golden_burst.pqt"
test -f "$TRACE" || { echo "missing fixture $TRACE" >&2; exit 2; }

WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

"$TOOLS_DIR/pq_replay" "$TRACE" --batch 256 --threads 2 \
  --save-records "$WORK/g.pqr" --archive-dir "$WORK/archive" \
  --archive-fsync segment > /dev/null

# Same queries as golden_offline_test.sh, through both engines; everything
# after each tool's header line must be byte-identical.
"$TOOLS_DIR/pq_offline" "$WORK/g.pqr" windows 0 500000 1500000 --top 5 \
  | sed 1d >  "$WORK/offline.txt"
"$TOOLS_DIR/pq_offline" "$WORK/g.pqr" monitor 0 1000000 \
  | sed 1d >> "$WORK/offline.txt"
"$TOOLS_DIR/pq_query" "$WORK/archive" windows 0 500000 1500000 --top 5 \
  | sed 1d >  "$WORK/archive.txt"
"$TOOLS_DIR/pq_query" "$WORK/archive" monitor 0 1000000 \
  | sed 1d >> "$WORK/archive.txt"
if ! diff -u "$WORK/offline.txt" "$WORK/archive.txt"; then
  echo "pq_query answers diverged from pq_offline" >&2
  exit 1
fi

# A clean close leaves every segment with a footer and zero recoveries.
"$TOOLS_DIR/pq_query" "$WORK/archive" info | tee "$WORK/info.txt" >&2
grep -q ' 0 recoveries' "$WORK/info.txt" || {
  echo "clean archive reported recoveries" >&2
  exit 1
}

# Crash simulation: chop the tail off the newest segment and re-query. The
# reader must still answer (recovered prefix), and report the recovery.
LAST_SEG="$(find "$WORK/archive" -name 'seg-*.pqs' | sort | tail -1)"
SIZE="$(stat -c %s "$LAST_SEG")"
truncate -s "$((SIZE - SIZE / 3))" "$LAST_SEG"
"$TOOLS_DIR/pq_query" "$WORK/archive" info | tee "$WORK/torn.txt" >&2
grep -q ' 0 recoveries' "$WORK/torn.txt" && {
  echo "truncated archive did not report a recovery" >&2
  exit 1
}
"$TOOLS_DIR/pq_query" "$WORK/archive" windows 0 500000 1500000 --top 5 \
  > /dev/null

echo "golden archive ok"
