// The network determinism contract (docs/NETWORK.md): a switch driven by
// the NetworkEngine is byte-identical to the same switch run standalone on
// the same trace. For a single-switch topology the induced arrival trace
// IS the injected workload (same packets, same merge_traces id
// assignment), so the full sharded-harness comparison surface — registers,
// query answers, DQ/fault streams, health, metrics, archive bytes — must
// match harness::run_once exactly, at every thread count, clean and under
// an active FaultPlan.
#include <gtest/gtest.h>

#include <vector>

#include "net/network_engine.h"
#include "net/topology.h"
#include "../integration/sharded_harness.h"

namespace pq {
namespace {

/// One switch whose 8 ports each attach a host, with direct routes — the
/// network embedding of the harness's 8-port standalone configuration.
net::Topology one_switch_topology() {
  net::Topology t;
  t.name = "single";
  net::SwitchConfig sw;
  sw.id = 0;
  sw.name = "s0";
  sw.ports.resize(harness::kPorts);
  for (std::uint32_t p = 0; p < harness::kPorts; ++p) {
    sw.ports[p].port_id = p;
    sw.ports[p].collect_depth_series = false;
  }
  t.switches.push_back(std::move(sw));
  for (std::uint32_t h = 0; h < harness::kPorts; ++h) {
    t.hosts.push_back({h, 0, h, net::default_host_ip(h)});
    t.routes.push_back({0, h, {h}});
  }
  return t;
}

/// The harness workload with each flow's dst_ip rewritten to the host on
/// its target port, so the topology's routing reproduces the original
/// egress hints.
std::vector<Packet> routed_workload() {
  auto packets = harness::workload();
  for (Packet& p : packets) {
    p.flow.dst_ip = net::default_host_ip(p.egress_hint);
  }
  return packets;
}

struct Sweep {
  bool with_faults;
  unsigned threads;
};

class NetworkDifferential : public ::testing::TestWithParam<Sweep> {};

TEST_P(NetworkDifferential, SingleNodeMatchesStandaloneByteForByte) {
  const Sweep sweep = GetParam();
  const auto packets = routed_workload();

  // Standalone oracle over the exact same packets and configuration.
  harness::RunSpec spec;
  spec.with_faults = sweep.with_faults;
  spec.threads = sweep.threads;
  const harness::RunResult oracle = harness::run_once(packets, spec);
  ASSERT_GT(oracle.packets_seen, 0u);
  ASSERT_FALSE(oracle.registers.empty());

  // The same switch as a one-node network.
  const auto scfg = harness::system_config(sweep.with_faults);
  net::NetworkConfig ncfg;
  ncfg.topology = one_switch_topology();
  ncfg.node.pipeline = scfg.pipeline;
  ncfg.node.analysis = scfg.analysis;
  ncfg.node.faults = scfg.faults;
  ncfg.node.epoch_ns = scfg.epoch_ns;
  net::NetworkEngine engine(ncfg);

  const harness::TempDir archive_dir;
  store::Archive archive(
      harness::harness_archive_options(archive_dir.path()));
  archive.attach(engine.node(0).pipeline(), engine.node(0).analysis());

  net::Injection inj;
  inj.host = 0;  // all hosts share the switch; routing keys off dst_ip
  inj.packets = packets;
  engine.run({inj}, sweep.threads, /*batch=*/1);
  archive.close();

  // The induced trace must be the injected workload verbatim — same order,
  // same ids, same routed egress hints.
  const auto& induced = engine.induced_trace(0);
  ASSERT_EQ(induced.size(), packets.size());
  for (std::size_t i = 0; i < packets.size(); ++i) {
    EXPECT_EQ(induced[i].arrival_ns, packets[i].arrival_ns) << "i=" << i;
    EXPECT_EQ(induced[i].egress_hint, packets[i].egress_hint) << "i=" << i;
    EXPECT_EQ(induced[i].id, packets[i].id) << "i=" << i;
    EXPECT_EQ(flow_signature(induced[i].flow),
              flow_signature(packets[i].flow))
        << "i=" << i;
    if (this->HasFailure()) break;
  }

  // Every packet got a one-hop header at its routed port.
  EXPECT_EQ(engine.stats().injected, packets.size());
  EXPECT_EQ(engine.stats().delivered + engine.stats().dropped,
            packets.size());
  EXPECT_EQ(engine.stats().total_hops, engine.stats().delivered);

  const harness::RunResult got =
      harness::collect_result(engine.node(0), archive_dir.path());
  EXPECT_EQ(oracle.registers, got.registers);
  EXPECT_EQ(oracle.answers, got.answers);
  EXPECT_EQ(oracle.fault_schedule, got.fault_schedule);
  EXPECT_EQ(oracle.dq_stream, got.dq_stream);
  EXPECT_EQ(oracle.health, got.health);
  EXPECT_EQ(oracle.packets_seen, got.packets_seen);
  EXPECT_EQ(oracle.dq_fired, got.dq_fired);
  EXPECT_EQ(oracle.metrics_json, got.metrics_json);
  EXPECT_EQ(oracle.archive_bytes, got.archive_bytes);
}

INSTANTIATE_TEST_SUITE_P(
    CleanAndFaultedAcrossThreads, NetworkDifferential,
    ::testing::Values(Sweep{false, 1}, Sweep{false, 2}, Sweep{false, 8},
                      Sweep{true, 1}, Sweep{true, 2}, Sweep{true, 8}),
    [](const ::testing::TestParamInfo<Sweep>& tpi) {
      return std::string(tpi.param.with_faults ? "Faults" : "Clean") +
             "T" + std::to_string(tpi.param.threads);
    });

}  // namespace
}  // namespace pq
