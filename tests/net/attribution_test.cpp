// Attribution correctness on an engineered 3-hop incast with ground truth:
// the cross-rack incast oversubscribes exactly one hop (the receiver's
// downlink), so NetworkAnalysis must (1) see three hops on the victim's
// path, (2) attribute the congestion to that hop, and (3) name the
// engineered aggressors there with precision >= 0.8 against record-derived
// ground truth — the same floor the net_incast bench baseline gates on.
#include "net/network_analysis.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>

#include "net/network_engine.h"
#include "net/topology.h"
#include "traffic/net_scenarios.h"

namespace pq {
namespace {

net::NetworkConfig standard_config(net::Topology topo) {
  net::NetworkConfig cfg;
  cfg.topology = std::move(topo);
  cfg.node.pipeline.windows.m0 = 10;
  cfg.node.pipeline.windows.alpha = 1;
  cfg.node.pipeline.windows.k = 9;
  cfg.node.pipeline.windows.num_windows = 4;
  cfg.node.pipeline.monitor.max_depth_cells = 25000;
  cfg.node.pipeline.monitor.granularity_cells = 8;
  return cfg;
}

TEST(Attribution, ThreeHopIncastNamesTheCongestedHopAndCulprits) {
  net::LeafSpineParams lsp;
  lsp.leaves = 2;
  lsp.spines = 1;
  lsp.hosts_per_leaf = 4;
  const net::Topology topo = net::make_leaf_spine(lsp);

  traffic::CrossRackIncastConfig icfg;
  icfg.receiver_host = 0;
  traffic::NetScenario sc = traffic::cross_rack_incast(topo, icfg);
  ASSERT_EQ(sc.culprit_flows.size(), icfg.senders);

  net::NetworkEngine engine(standard_config(topo));
  engine.run(std::move(sc.injections), /*threads=*/2, /*batch=*/16);

  // The incast is engineered drop-free: the backlog peaks around half the
  // buffer, so every packet delivers and the victim's whole path is in the
  // headers.
  EXPECT_EQ(engine.stats().dropped, 0u);
  EXPECT_EQ(engine.stats().delivered, engine.stats().injected);

  net::NetworkAnalysis analysis(engine);
  const net::AttributionReport r = analysis.attribute(sc.victim, 8);

  // Cross-rack path: sender leaf -> spine -> receiver leaf.
  EXPECT_EQ(r.hops.size(), 3u);
  EXPECT_GT(r.victim_packets, 0u);
  EXPECT_FALSE(r.int_overflow);

  // The congested hop is the receiver's downlink, and it dominates: the
  // victim's delay there dwarfs the uncongested fabric hops.
  EXPECT_EQ(r.culprit_switch, sc.expected_culprit_switch);
  EXPECT_EQ(r.culprit_port, sc.expected_culprit_port);
  const auto worst = std::max_element(
      r.hops.begin(), r.hops.end(), [](const auto& a, const auto& b) {
        return a.total_queue_delay_ns < b.total_queue_delay_ns;
      });
  EXPECT_EQ(worst->switch_id, sc.expected_culprit_switch);
  for (const auto& hop : r.hops) {
    if (hop.switch_id == r.culprit_switch &&
        hop.egress_port == r.culprit_port) {
      continue;
    }
    EXPECT_LT(hop.total_queue_delay_ns * 10, worst->total_queue_delay_ns)
        << "hop (" << hop.switch_id << "," << hop.egress_port
        << ") should be uncongested";
  }

  // The worst victim packet's queuing interval there is non-degenerate.
  EXPECT_LT(r.interval_lo, r.interval_hi);

  // The per-switch time-window query at that hop names the aggressors.
  ASSERT_FALSE(r.culprits.empty());
  EXPECT_GT(r.coverage, 0.0);
  std::set<std::uint64_t> engineered;
  for (const FlowId& f : sc.culprit_flows) {
    engineered.insert(flow_signature(f));
  }
  std::size_t named = 0;
  for (const auto& [flow, weight] : r.culprits) {
    EXPECT_NE(flow_signature(flow), flow_signature(sc.victim))
        << "the victim must not be named a culprit";
    EXPECT_GT(weight, 0.0);
    named += engineered.count(flow_signature(flow));
  }
  // Every named culprit is one of the engineered aggressors (the only
  // other flow at that hop is the victim, which is excluded).
  EXPECT_EQ(named, r.culprits.size());

  // The acceptance gate: precision vs record ground truth at the hop.
  EXPECT_GE(r.direct_accuracy.precision, 0.8);
  EXPECT_GT(r.direct_accuracy.recall, 0.0);

  // Report renders to JSON with the gated fields present.
  const std::string json = net::to_json(r, engine.stats());
  EXPECT_NE(json.find("\"culprit_switch\""), std::string::npos);
  EXPECT_NE(json.find("\"precision\""), std::string::npos);
}

TEST(Attribution, PickVictimFindsTheSufferingFlow) {
  net::LeafSpineParams lsp;
  lsp.leaves = 2;
  lsp.spines = 1;
  lsp.hosts_per_leaf = 4;
  const net::Topology topo = net::make_leaf_spine(lsp);
  traffic::NetScenario sc = traffic::cross_rack_incast(topo, {});

  net::NetworkEngine engine(standard_config(topo));
  engine.run(std::move(sc.injections));

  // Every flow through the incast queue suffers; pick_victim must return
  // one of the delivered flows, and attributing it lands on the same hop.
  net::NetworkAnalysis analysis(engine);
  const FlowId victim = analysis.pick_victim();
  const net::AttributionReport r = analysis.attribute(victim, 4);
  EXPECT_EQ(r.culprit_switch, sc.expected_culprit_switch);
  EXPECT_EQ(r.culprit_port, sc.expected_culprit_port);
}

TEST(Attribution, EcmpImbalanceBlamesTheLoadedUplink) {
  // The rack must be wide enough that the 40G uplink spread over the
  // downlinks stays under 10G each — 8 hosts/leaf — or the receivers'
  // downlinks would out-congest the uplink the scenario engineers.
  net::LeafSpineParams lsp;
  lsp.leaves = 2;
  lsp.spines = 2;
  lsp.hosts_per_leaf = 8;
  const net::Topology topo = net::make_leaf_spine(lsp);

  traffic::EcmpImbalanceConfig ecfg;
  ecfg.src_host = 0;
  ecfg.dst_host = 8;  // anchors the other rack (hosts 8..15)
  traffic::NetScenario sc = traffic::ecmp_imbalance(topo, ecfg);

  net::NetworkEngine engine(standard_config(topo));
  engine.run(std::move(sc.injections), /*threads=*/2);

  net::NetworkAnalysis analysis(engine);
  const net::AttributionReport r = analysis.attribute(sc.victim, 8);
  EXPECT_EQ(r.culprit_switch, sc.expected_culprit_switch);
  EXPECT_EQ(r.culprit_port, sc.expected_culprit_port);
  EXPECT_GE(r.direct_accuracy.precision, 0.8);
}

TEST(Attribution, ThrowsWithoutVictimTraffic) {
  net::LeafSpineParams lsp;
  const net::Topology topo = net::make_leaf_spine(lsp);
  net::NetworkEngine engine(standard_config(topo));
  engine.run({});
  net::NetworkAnalysis analysis(engine);
  EXPECT_THROW(analysis.pick_victim(), std::runtime_error);
  FlowId ghost;
  ghost.src_ip = 1;
  EXPECT_THROW(analysis.attribute(ghost, 4), std::runtime_error);
}

}  // namespace
}  // namespace pq
