// Topology model contract (src/net/topology.h): JSON round-trips
// field-for-field, validate() rejects every class of structural error with
// a message naming the offender, the generators produce valid fabrics of
// the documented shape, and the committed configs/mesh3.json example loads.
#include "net/topology.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>

namespace pq::net {
namespace {

/// A minimal valid 2-switch topology: h0 -- s0 -- s1 -- h1, one
/// bidirectional link pair, direct routes.
Topology tiny() {
  Topology t;
  t.name = "tiny";
  for (std::uint32_t s = 0; s < 2; ++s) {
    SwitchConfig sw;
    sw.id = s;
    sw.name = "s" + std::to_string(s);
    sw.ports.resize(2);
    for (std::uint32_t p = 0; p < 2; ++p) sw.ports[p].port_id = p;
    t.switches.push_back(sw);
  }
  t.hosts.push_back({0, 0, 0, default_host_ip(0)});
  t.hosts.push_back({1, 1, 0, default_host_ip(1)});
  t.links.push_back({0, 1, 1, 500});
  t.links.push_back({1, 1, 0, 500});
  t.routes.push_back({0, 0, {0}});
  t.routes.push_back({0, 1, {1}});
  t.routes.push_back({1, 0, {1}});
  t.routes.push_back({1, 1, {0}});
  return t;
}

TEST(Topology, TinyValidatesAndLooksUp) {
  Topology t = tiny();
  ASSERT_NO_THROW(t.validate());
  EXPECT_NE(t.link_at(0, 1), nullptr);
  EXPECT_EQ(t.link_at(0, 1)->to_switch, 1u);
  EXPECT_EQ(t.link_at(0, 0), nullptr);
  ASSERT_NE(t.host_at(0, 0), nullptr);
  EXPECT_EQ(t.host_at(0, 0)->id, 0u);
  EXPECT_EQ(t.host_by_ip(default_host_ip(1)), 1u);
  EXPECT_EQ(t.host_by_ip(12345u), std::nullopt);
  EXPECT_EQ(t.min_link_delay(), Duration{500});

  FlowId f;
  f.src_ip = default_host_ip(0);
  f.dst_ip = default_host_ip(1);
  f.src_port = 1000;
  f.dst_port = 80;
  f.proto = 6;
  EXPECT_EQ(t.next_port(0, 1, f), 1u);  // single-member set: deterministic
  EXPECT_EQ(t.next_port(1, 1, f), 0u);
}

TEST(Topology, JsonRoundTripIsFieldIdentical) {
  Topology t = tiny();
  t.validate();
  const std::string json = to_json(t);
  Topology r = load_topology(json);  // load validates

  EXPECT_EQ(r.name, t.name);
  ASSERT_EQ(r.switches.size(), t.switches.size());
  for (std::size_t s = 0; s < t.switches.size(); ++s) {
    EXPECT_EQ(r.switches[s].id, t.switches[s].id);
    EXPECT_EQ(r.switches[s].name, t.switches[s].name);
    ASSERT_EQ(r.switches[s].ports.size(), t.switches[s].ports.size());
    for (std::size_t p = 0; p < t.switches[s].ports.size(); ++p) {
      EXPECT_EQ(r.switches[s].ports[p].port_id,
                t.switches[s].ports[p].port_id);
      EXPECT_DOUBLE_EQ(r.switches[s].ports[p].line_rate_gbps,
                       t.switches[s].ports[p].line_rate_gbps);
      EXPECT_EQ(r.switches[s].ports[p].capacity_cells,
                t.switches[s].ports[p].capacity_cells);
    }
  }
  ASSERT_EQ(r.hosts.size(), t.hosts.size());
  for (std::size_t h = 0; h < t.hosts.size(); ++h) {
    EXPECT_EQ(r.hosts[h].id, t.hosts[h].id);
    EXPECT_EQ(r.hosts[h].attach_switch, t.hosts[h].attach_switch);
    EXPECT_EQ(r.hosts[h].attach_port, t.hosts[h].attach_port);
    EXPECT_EQ(r.hosts[h].ip, t.hosts[h].ip);
  }
  ASSERT_EQ(r.links.size(), t.links.size());
  for (std::size_t l = 0; l < t.links.size(); ++l) {
    EXPECT_EQ(r.links[l].from_switch, t.links[l].from_switch);
    EXPECT_EQ(r.links[l].from_port, t.links[l].from_port);
    EXPECT_EQ(r.links[l].to_switch, t.links[l].to_switch);
    EXPECT_EQ(r.links[l].delay_ns, t.links[l].delay_ns);
  }
  ASSERT_EQ(r.routes.size(), t.routes.size());
  for (std::size_t i = 0; i < t.routes.size(); ++i) {
    EXPECT_EQ(r.routes[i].sw, t.routes[i].sw);
    EXPECT_EQ(r.routes[i].dst_host, t.routes[i].dst_host);
    EXPECT_EQ(r.routes[i].ports, t.routes[i].ports);
  }
  // Serialization is canonical: a second round trip is byte-stable.
  EXPECT_EQ(to_json(r), json);
}

TEST(Topology, LoadRejectsMalformedJson) {
  EXPECT_THROW(load_topology("not json"), TopologyError);
  EXPECT_THROW(load_topology("{\"topology\": []}"), TopologyError);
  EXPECT_THROW(load_topology("{\"name\": \"x\", \"bogus_key\": 1}"),
               TopologyError);
}

TEST(TopologyValidate, RejectsIdMismatches) {
  {
    Topology t = tiny();
    t.switches[1].id = 7;  // id must equal index
    EXPECT_THROW(t.validate(), TopologyError);
  }
  {
    Topology t = tiny();
    t.switches[0].ports[1].port_id = 9;
    EXPECT_THROW(t.validate(), TopologyError);
  }
  {
    Topology t = tiny();
    t.hosts[1].id = 5;
    EXPECT_THROW(t.validate(), TopologyError);
  }
}

TEST(TopologyValidate, RejectsBadLinks) {
  {
    Topology t = tiny();
    t.links[0].delay_ns = 0;  // zero-delay kills the GVT lookahead
    EXPECT_THROW(t.validate(), TopologyError);
  }
  {
    Topology t = tiny();
    t.links.push_back({0, 1, 1, 500});  // second link on s0 port 1
    EXPECT_THROW(t.validate(), TopologyError);
  }
  {
    Topology t = tiny();
    t.links[0].to_switch = 9;  // dangling reference
    EXPECT_THROW(t.validate(), TopologyError);
  }
  {
    Topology t = tiny();
    t.links.push_back({0, 0, 1, 500});  // s0 port 0 already has host 0
    EXPECT_THROW(t.validate(), TopologyError);
  }
}

TEST(TopologyValidate, RejectsBadHosts) {
  {
    Topology t = tiny();
    t.hosts[1].ip = t.hosts[0].ip;  // duplicate ip
    EXPECT_THROW(t.validate(), TopologyError);
  }
  {
    Topology t = tiny();
    t.hosts[1].attach_port = 1;  // s1 port 1 carries the link back to s0
    EXPECT_THROW(t.validate(), TopologyError);
  }
  {
    Topology t = tiny();
    t.hosts[1].attach_switch = 3;
    EXPECT_THROW(t.validate(), TopologyError);
  }
}

TEST(TopologyValidate, RejectsBadRoutes) {
  {
    Topology t = tiny();
    t.routes[1].ports.clear();  // empty equal-cost set
    EXPECT_THROW(t.validate(), TopologyError);
  }
  {
    Topology t = tiny();
    t.routes[1].ports = {1, 1};  // duplicate member
    EXPECT_THROW(t.validate(), TopologyError);
  }
  {
    // Routed port with neither a link nor the destination host: s0's route
    // to host 1 via port 0 terminates at host 0 instead.
    Topology t = tiny();
    t.routes[1].ports = {0};
    EXPECT_THROW(t.validate(), TopologyError);
  }
  {
    Topology t = tiny();
    t.routes.push_back({0, 1, {1}});  // duplicate (switch, dst) entry
    EXPECT_THROW(t.validate(), TopologyError);
  }
}

TEST(TopologyValidate, RejectsRoutingLoop) {
  // s0 and s1 bounce host-1 traffic back and forth: s0 -> s1 -> s0.
  Topology t = tiny();
  t.routes[3] = {1, 1, {1}};  // s1 forwards to s0 instead of its own host
  EXPECT_THROW(t.validate(), TopologyError);
}

TEST(TopologyValidate, RejectsRouteIntoRoutelessSwitch) {
  // s0 forwards host-1 traffic to s1, but s1 has no entry for host 1.
  Topology t = tiny();
  t.routes.erase(t.routes.begin() + 3);
  EXPECT_THROW(t.validate(), TopologyError);
}

TEST(Topology, EcmpSelectionCoversTheSetDeterministically) {
  LeafSpineParams p;
  p.leaves = 2;
  p.spines = 4;
  p.hosts_per_leaf = 2;
  Topology t = make_leaf_spine(p);
  // Cross-rack set at leaf 0 for a host on leaf 1: all four uplinks.
  const auto& set = t.route_ports(0, 2);
  ASSERT_EQ(set.size(), 4u);

  std::set<std::uint32_t> chosen;
  for (std::uint32_t sp = 0; sp < 64; ++sp) {
    FlowId f;
    f.src_ip = default_host_ip(0);
    f.dst_ip = default_host_ip(2);
    f.src_port = static_cast<std::uint16_t>(1000 + sp);
    f.dst_port = 80;
    f.proto = 6;
    const auto port = t.next_port(0, 2, f);
    EXPECT_EQ(port, t.next_port(0, 2, f));  // stable per flow
    EXPECT_NE(std::find(set.begin(), set.end(), port), set.end());
    chosen.insert(port);
  }
  EXPECT_EQ(chosen.size(), 4u) << "64 flows should reach all 4 paths";
}

TEST(Generators, LeafSpineShape) {
  LeafSpineParams p;
  p.leaves = 3;
  p.spines = 2;
  p.hosts_per_leaf = 4;
  Topology t = make_leaf_spine(p);  // generator validates internally
  EXPECT_EQ(t.switches.size(), 5u);
  EXPECT_EQ(t.hosts.size(), 12u);
  // Each leaf: one downlink per host + one uplink per spine, both ways.
  EXPECT_EQ(t.links.size(), 2u * 3u * 2u);
  EXPECT_EQ(t.min_link_delay(), Duration{p.link_delay_ns});
}

TEST(Generators, FatTreeShape) {
  FatTreeParams p;
  p.k = 4;
  Topology t = make_fat_tree(p);
  // k=4: 8 edges + 8 aggs + 4 cores, 16 hosts.
  EXPECT_EQ(t.switches.size(), 20u);
  EXPECT_EQ(t.hosts.size(), 16u);
  // Cross-pod routes ECMP over k/2 uplinks at the edge tier.
  EXPECT_EQ(t.route_ports(0, 15).size(), 2u);
}

TEST(Topology, CommittedMesh3ExampleLoads) {
  Topology t = load_topology_file(std::string(PQ_CONFIGS_DIR) +
                                  "/mesh3.json");
  EXPECT_EQ(t.name, "mesh3");
  EXPECT_EQ(t.switches.size(), 3u);
  EXPECT_EQ(t.hosts.size(), 3u);
  EXPECT_EQ(t.links.size(), 6u);
  // The mesh gives each destination one two-path entry (direct + relay).
  EXPECT_EQ(t.route_ports(0, 2).size(), 2u);
  EXPECT_EQ(t.route_ports(2, 1).size(), 2u);
  // Round trip survives the committed file too.
  const Topology r = load_topology(to_json(t));
  EXPECT_EQ(to_json(r), to_json(t));
}

}  // namespace
}  // namespace pq::net
