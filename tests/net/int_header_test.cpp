// INT stack semantics (src/net/int_header.h + the NetworkEngine that fills
// it): the per-packet hop stack is bounded to K entries with an explicit
// overflow marker while hop_count keeps counting, and a packet crossing a
// 3-switch chain records exactly its path with monotone timestamps.
#include "net/int_header.h"

#include <gtest/gtest.h>

#include "net/network_engine.h"
#include "net/topology.h"

namespace pq::net {
namespace {

TEST(IntHeader, PushHopBoundsStackAndMarksOverflow) {
  IntHeader h;
  for (std::uint32_t i = 0; i < 5; ++i) {
    IntHop hop;
    hop.switch_id = i;
    h.push_hop(hop, /*max_hops=*/3);
  }
  EXPECT_EQ(h.hop_count, 5u);      // the counter never saturates
  ASSERT_EQ(h.hops.size(), 3u);    // the stack does
  EXPECT_TRUE(h.overflow);
  for (std::uint32_t i = 0; i < 3; ++i) {
    EXPECT_EQ(h.hops[i].switch_id, i);  // oldest hops are kept
  }
}

TEST(IntHeader, NoOverflowAtExactCapacity) {
  IntHeader h;
  for (std::uint32_t i = 0; i < 3; ++i) h.push_hop({}, 3);
  EXPECT_EQ(h.hop_count, 3u);
  EXPECT_EQ(h.hops.size(), 3u);
  EXPECT_FALSE(h.overflow);
}

TEST(IntHop, QueueDelayIsDequeueMinusEnqueue) {
  IntHop hop;
  hop.enq_timestamp = 1000;
  hop.deq_timestamp = 4500;
  EXPECT_EQ(hop.queue_delay(), Duration{3500});
}

/// h0 -- s0 -- s1 -- s2 -- h1: the smallest topology with a multi-switch
/// path. Port 0 of s0/s2 is the host downlink; fabric ports carry the
/// chain.
Topology chain3() {
  Topology t;
  t.name = "chain3";
  for (std::uint32_t s = 0; s < 3; ++s) {
    SwitchConfig sw;
    sw.id = s;
    sw.name = "c" + std::to_string(s);
    sw.ports.resize(2);
    for (std::uint32_t p = 0; p < 2; ++p) sw.ports[p].port_id = p;
    t.switches.push_back(sw);
  }
  t.hosts.push_back({0, 0, 0, default_host_ip(0)});
  t.hosts.push_back({1, 2, 0, default_host_ip(1)});
  t.links.push_back({0, 1, 1, 700});  // s0 -> s1
  t.links.push_back({1, 1, 2, 700});  // s1 -> s2
  t.routes.push_back({0, 0, {0}});
  t.routes.push_back({0, 1, {1}});
  t.routes.push_back({1, 1, {1}});
  t.routes.push_back({2, 1, {0}});
  return t;
}

std::vector<Injection> chain_traffic(std::uint32_t packets) {
  FlowId f;
  f.src_ip = default_host_ip(0);
  f.dst_ip = default_host_ip(1);
  f.src_port = 4242;
  f.dst_port = 80;
  f.proto = 6;
  Injection inj;
  inj.host = 0;
  for (std::uint32_t i = 0; i < packets; ++i) {
    Packet p;
    p.flow = f;
    p.size_bytes = 1000;
    p.arrival_ns = 10'000 + static_cast<Timestamp>(i) * 2'000;
    inj.packets.push_back(p);
  }
  return {inj};
}

TEST(IntHeaderEngine, ThreeHopChainRecordsFullPath) {
  NetworkConfig cfg;
  cfg.topology = chain3();
  NetworkEngine net(cfg);
  net.run(chain_traffic(8));

  EXPECT_EQ(net.stats().injected, 8u);
  EXPECT_EQ(net.stats().delivered, 8u);
  EXPECT_EQ(net.stats().dropped, 0u);
  EXPECT_EQ(net.stats().total_hops, 24u);

  for (const IntHeader& h : net.headers()) {
    EXPECT_EQ(h.fate, PacketFate::kDelivered);
    EXPECT_FALSE(h.overflow);
    ASSERT_EQ(h.hops.size(), 3u);
    Timestamp prev_deq = 0;
    for (std::uint32_t i = 0; i < 3; ++i) {
      EXPECT_EQ(h.hops[i].switch_id, i);
      EXPECT_EQ(h.hops[i].egress_port, i == 2 ? 0u : 1u);
      EXPECT_GE(h.hops[i].enq_timestamp, prev_deq);
      // Queue delay excludes transmission: an uncongested hop dequeues at
      // its enqueue instant.
      EXPECT_GE(h.hops[i].deq_timestamp, h.hops[i].enq_timestamp);
      prev_deq = h.hops[i].deq_timestamp;
    }
    // Link delay separates consecutive hops.
    EXPECT_GE(h.hops[1].enq_timestamp, h.hops[0].deq_timestamp + 700);
    EXPECT_EQ(h.delivered_at, h.hops[2].deq_timestamp);
    EXPECT_GT(h.total_delay(), Duration{0});
  }
}

TEST(IntHeaderEngine, StackOverflowsAtConfiguredBudget) {
  NetworkConfig cfg;
  cfg.topology = chain3();
  cfg.int_max_hops = 2;  // path is 3 switches long
  NetworkEngine net(cfg);
  net.run(chain_traffic(3));

  EXPECT_EQ(net.stats().delivered, 3u);
  for (const IntHeader& h : net.headers()) {
    EXPECT_EQ(h.fate, PacketFate::kDelivered);  // overflow is not a drop
    EXPECT_TRUE(h.overflow);
    EXPECT_EQ(h.hop_count, 3u);
    ASSERT_EQ(h.hops.size(), 2u);
    EXPECT_EQ(h.hops[0].switch_id, 0u);
    EXPECT_EQ(h.hops[1].switch_id, 1u);
  }
}

TEST(IntHeaderEngine, TtlBackstopStopsForwarding) {
  NetworkConfig cfg;
  cfg.topology = chain3();
  cfg.max_ttl = 2;
  NetworkEngine net(cfg);
  net.run(chain_traffic(2));

  EXPECT_EQ(net.stats().delivered, 0u);
  EXPECT_EQ(net.stats().ttl_exceeded, 2u);
  for (const IntHeader& h : net.headers()) {
    EXPECT_EQ(h.fate, PacketFate::kTtlExceeded);
    EXPECT_EQ(h.hop_count, 2u);
  }
}

}  // namespace
}  // namespace pq::net
