// Randomized invariants of the egress-port simulator, parameterized over
// the scheduling discipline: conservation, causality, depth accounting,
// and telemetry self-consistency must hold regardless of the scheduler.
#include <gtest/gtest.h>

#include <unordered_map>

#include "common/rng.h"
#include "sim/egress_port.h"

namespace pq::sim {
namespace {

class SchedulerProperty : public ::testing::TestWithParam<SchedulerKind> {};

std::vector<Packet> random_packets(std::uint64_t seed, int n) {
  Rng rng(seed);
  std::vector<Packet> pkts;
  Timestamp t = 0;
  for (int i = 0; i < n; ++i) {
    t += rng.uniform_below(300);
    Packet p;
    p.flow = make_flow(static_cast<std::uint32_t>(rng.uniform_below(23)));
    p.size_bytes =
        64 + static_cast<std::uint32_t>(rng.uniform_below(1437));
    p.priority = static_cast<std::uint8_t>(rng.uniform_below(4));
    p.arrival_ns = t;
    p.id = static_cast<std::uint64_t>(i) + 1;
    pkts.push_back(p);
  }
  return pkts;
}

TEST_P(SchedulerProperty, ConservationAndCausality) {
  PortConfig cfg;
  cfg.scheduler = GetParam();
  cfg.num_classes = 4;
  cfg.capacity_cells = 2000;  // small buffer: force drops
  EgressPort port(cfg);
  const auto pkts = random_packets(3, 5000);
  port.run(pkts);

  // Conservation: every packet is either delivered or dropped, never both.
  EXPECT_EQ(port.records().size() + port.drops().size(), pkts.size());
  std::unordered_map<std::uint64_t, int> seen;
  for (const auto& r : port.records()) ++seen[r.packet_id];
  for (const auto& d : port.drops()) ++seen[d.packet_id];
  for (const auto& [id, n] : seen) EXPECT_EQ(n, 1) << "packet " << id;

  // Causality: dequeue at or after enqueue; departures weakly ordered.
  Timestamp last_deq = 0;
  for (const auto& r : port.records()) {
    EXPECT_GE(r.deq_timestamp(), r.enq_timestamp);
    EXPECT_GE(r.deq_timestamp(), last_deq);
    last_deq = r.deq_timestamp();
  }

  // Queue fully drains.
  EXPECT_EQ(port.depth_cells(), 0u);
  EXPECT_EQ(port.depth_series().samples().back().depth_cells, 0u);
}

TEST_P(SchedulerProperty, DepthNeverExceedsCapacity) {
  PortConfig cfg;
  cfg.scheduler = GetParam();
  cfg.num_classes = 4;
  cfg.capacity_cells = 500;
  EgressPort port(cfg);
  port.run(random_packets(5, 4000));
  EXPECT_LE(port.stats().peak_depth_cells, 500u);
  for (const auto& s : port.depth_series().samples()) {
    EXPECT_LE(s.depth_cells, 500u);
  }
}

TEST_P(SchedulerProperty, ThroughputBoundedByLineRate) {
  PortConfig cfg;
  cfg.scheduler = GetParam();
  cfg.num_classes = 4;
  cfg.line_rate_gbps = 10.0;
  EgressPort port(cfg);
  port.run(random_packets(7, 5000));
  const auto& st = port.stats();
  const double gbps = static_cast<double>(st.bytes_sent) * 8.0 /
                      static_cast<double>(st.last_departure);
  EXPECT_LE(gbps, 10.0 + 1e-6);
}

TEST_P(SchedulerProperty, ClassDepthsConsistentWithPortDepth) {
  // Each packet's per-class observation never exceeds its port-level one.
  struct Probe : EgressHook {
    void on_egress(const EgressContext& ctx) override {
      EXPECT_LE(ctx.enq_queue_qdepth, ctx.enq_qdepth);
      EXPECT_LT(ctx.queue_id, 4);
    }
  } probe;
  PortConfig cfg;
  cfg.scheduler = GetParam();
  cfg.num_classes = 4;
  EgressPort port(cfg);
  port.add_hook(&probe);
  port.run(random_packets(9, 3000));
}

INSTANTIATE_TEST_SUITE_P(
    AllSchedulers, SchedulerProperty,
    ::testing::Values(SchedulerKind::kFifo, SchedulerKind::kStrictPriority,
                      SchedulerKind::kDrr),
    [](const ::testing::TestParamInfo<SchedulerKind>& tpi) {
      switch (tpi.param) {
        case SchedulerKind::kFifo:
          return "Fifo";
        case SchedulerKind::kStrictPriority:
          return "StrictPriority";
        case SchedulerKind::kDrr:
          return "Drr";
      }
      return "Unknown";
    });

}  // namespace
}  // namespace pq::sim
