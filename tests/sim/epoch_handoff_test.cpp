// The epoch-batched handoff (sim/epoch_handoff.h) at the engine level: for
// ANY epoch size — one that slices the run into thousands of chunks, an odd
// one that never aligns with packet times, one bigger than the whole run —
// and any thread/batch combination, the per-port record streams and the
// merged dequeue-order view must be byte-identical to the legacy
// end-of-run merge (epoch_ns = 0, one thread). The hook protocol is pinned
// separately: per-shard epochs arrive contiguously from 0 with exactly one
// final seal, the consumer sees epochs in order, and sidecars ride from
// seal to ready untouched.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <memory>
#include <vector>

#include "sim/sharded_engine.h"
#include "traffic/distributions.h"
#include "traffic/trace_gen.h"

namespace pq::sim {
namespace {

constexpr std::uint32_t kPorts = 8;

std::vector<Packet> workload() {
  traffic::FlowTraceConfig tcfg;
  tcfg.flow_sizes = &traffic::web_search_flow_sizes();
  tcfg.duration_ns = 4'000'000;
  tcfg.seed = 424242;
  return traffic::generate_flow_trace(tcfg);
}

ShardedEngine make_engine() {
  std::vector<PortConfig> cfgs(kPorts);
  for (std::uint32_t p = 0; p < kPorts; ++p) {
    cfgs[p].port_id = p;
    cfgs[p].collect_depth_series = false;
  }
  return ShardedEngine(std::move(cfgs));
}

/// Flattens a record stream to comparable words (TelemetryRecord has no
/// operator==; every field that can differ is encoded).
std::vector<std::uint64_t> encode(
    const std::vector<wire::TelemetryRecord>& recs) {
  std::vector<std::uint64_t> out;
  out.reserve(recs.size() * 6);
  for (const auto& r : recs) {
    out.push_back(r.packet_id);
    out.push_back(flow_signature(r.flow));
    out.push_back(r.egress_port);
    out.push_back(r.size_bytes);
    out.push_back(static_cast<std::uint64_t>(r.enq_timestamp));
    out.push_back((static_cast<std::uint64_t>(r.deq_timedelta) << 32) |
                  r.enq_qdepth);
  }
  return out;
}

struct EngineOutput {
  std::vector<std::uint64_t> merged;
  std::vector<std::vector<std::uint64_t>> per_port;
};

EngineOutput run_engine(const std::vector<Packet>& packets,
                        const ShardedEngine::RunOptions& opts) {
  auto eng = make_engine();
  eng.run(packets, opts);
  EngineOutput out;
  out.merged = encode(eng.merged_records());
  for (std::uint32_t p = 0; p < kPorts; ++p) {
    out.per_port.push_back(encode(eng.port(p).records()));
  }
  return out;
}

TEST(EpochHandoff, AnyEpochSizeMatchesLegacyMerge) {
  const auto packets = workload();
  ShardedEngine::RunOptions legacy;  // epoch_ns = 0: end-of-run merge
  const EngineOutput oracle = run_engine(packets, legacy);
  ASSERT_FALSE(oracle.merged.empty());

  for (const Duration epoch : {Duration{1'000}, Duration{77'777},
                               Duration{1'000'000}, Duration{1} << 40}) {
    for (const unsigned threads : {1u, 4u, 8u}) {
      for (const std::uint32_t batch : {1u, 64u}) {
        ShardedEngine::RunOptions opts;
        opts.threads = threads;
        opts.batch = batch;
        opts.epoch_ns = epoch;
        const EngineOutput got = run_engine(packets, opts);
        const auto label = ::testing::Message()
                           << "epoch_ns=" << epoch << " threads=" << threads
                           << " batch=" << batch;
        EXPECT_EQ(oracle.merged, got.merged) << label;
        EXPECT_EQ(oracle.per_port, got.per_port) << label;
      }
    }
  }
}

TEST(EpochHandoff, RunPartitionedMatchesRun) {
  const auto packets = workload();
  ShardedEngine::RunOptions opts;
  opts.threads = 4;
  opts.batch = 64;
  opts.epoch_ns = 500'000;
  const EngineOutput direct = run_engine(packets, opts);

  auto eng = make_engine();
  auto shards = ShardedEngine::partition(packets, eng.forwarding(), kPorts);
  eng.run_partitioned(std::move(shards), opts);
  EXPECT_EQ(direct.merged, encode(eng.merged_records()));
  for (std::uint32_t p = 0; p < kPorts; ++p) {
    EXPECT_EQ(direct.per_port[p], encode(eng.port(p).records())) << p;
  }
}

TEST(EpochHandoff, ParallelPartitionMatchesSequential) {
  const auto packets = workload();
  // Custom forwarding so run() takes the generic (non-dst-hash) path too.
  auto fwd = [](const Packet& p) {
    return static_cast<std::uint32_t>(p.flow.src_port % kPorts);
  };
  auto base = ShardedEngine::partition(packets, fwd, kPorts);
  for (const unsigned threads : {2u, 8u}) {
    auto eng = make_engine();
    eng.set_forwarding(fwd);
    ShardedEngine::RunOptions opts;
    opts.threads = threads;
    eng.run(packets, opts);
    for (std::uint32_t p = 0; p < kPorts; ++p) {
      ASSERT_EQ(base[p].size(), eng.port(p).records().size())
          << "threads=" << threads << " port=" << p;
    }
  }
}

// The hook protocol: seal runs per shard with contiguous epochs and exactly
// one final; ready runs per epoch in order, sees the shard-ordered sidecars
// unchanged, and flags the last epoch exactly once.
TEST(EpochHandoff, HookProtocolAndSidecarPassthrough) {
  const auto packets = workload();
  auto eng = make_engine();

  struct SealTag {
    std::uint32_t shard;
    std::uint64_t epoch;
    bool final_seal;
  };
  std::vector<std::vector<SealTag>> sealed(kPorts);  // per shard, seal order
  std::atomic<std::uint64_t> ready_calls{0};
  std::uint64_t last_epoch_seen = 0;
  std::uint64_t final_ready = 0;
  bool ready_order_ok = true;
  bool sidecars_ok = true;

  EpochHooks hooks;
  hooks.seal = [&](std::uint32_t shard, const EpochSeal& s) {
    sealed[shard].push_back({shard, s.epoch, s.final_seal});
    return std::make_shared<SealTag>(SealTag{shard, s.epoch, s.final_seal});
  };
  hooks.ready = [&](std::uint64_t epoch,
                    const std::vector<std::shared_ptr<void>>& sidecars,
                    bool last) {
    const std::uint64_t n = ready_calls.fetch_add(1);
    if (epoch != n) ready_order_ok = false;
    last_epoch_seen = epoch;
    if (last) ++final_ready;
    for (std::uint32_t s = 0; s < sidecars.size(); ++s) {
      if (sidecars[s] == nullptr) continue;  // shard already past its final
      const auto& tag = *static_cast<const SealTag*>(sidecars[s].get());
      if (tag.shard != s || tag.epoch != epoch) sidecars_ok = false;
    }
  };
  eng.set_epoch_hooks(&hooks);

  ShardedEngine::RunOptions opts;
  opts.threads = 4;
  opts.epoch_ns = 250'000;
  eng.run(packets, opts);

  EXPECT_TRUE(ready_order_ok);
  EXPECT_TRUE(sidecars_ok);
  EXPECT_EQ(final_ready, 1u);
  std::uint64_t max_final_epoch = 0;
  for (std::uint32_t s = 0; s < kPorts; ++s) {
    ASSERT_FALSE(sealed[s].empty()) << s;
    for (std::uint64_t e = 0; e < sealed[s].size(); ++e) {
      EXPECT_EQ(sealed[s][e].epoch, e) << "shard " << s;
      EXPECT_EQ(sealed[s][e].final_seal, e + 1 == sealed[s].size())
          << "shard " << s;
    }
    max_final_epoch = std::max(max_final_epoch, sealed[s].back().epoch);
  }
  // The consumer merges every epoch up to the last shard's final seal.
  EXPECT_EQ(ready_calls.load(), max_final_epoch + 1);
  EXPECT_EQ(last_epoch_seen, max_final_epoch);
}

}  // namespace
}  // namespace pq::sim
