#include "sim/scheduler.h"

#include <gtest/gtest.h>

namespace pq::sim {
namespace {

QueuedPacket qp(std::uint32_t flow, std::uint8_t prio = 0,
                std::uint32_t bytes = 100) {
  QueuedPacket q;
  q.pkt.flow = make_flow(flow);
  q.pkt.priority = prio;
  q.pkt.size_bytes = bytes;
  return q;
}

TEST(FifoScheduler, DequeuesInArrivalOrder) {
  FifoScheduler s;
  for (std::uint32_t i = 0; i < 5; ++i) s.enqueue(qp(i));
  for (std::uint32_t i = 0; i < 5; ++i) {
    auto p = s.dequeue();
    ASSERT_TRUE(p.has_value());
    EXPECT_EQ(p->pkt.flow, make_flow(i));
  }
  EXPECT_FALSE(s.dequeue().has_value());
}

TEST(FifoScheduler, EmptyAndCountTrackState) {
  FifoScheduler s;
  EXPECT_TRUE(s.empty());
  s.enqueue(qp(1));
  s.enqueue(qp(2));
  EXPECT_EQ(s.packet_count(), 2u);
  s.dequeue();
  EXPECT_EQ(s.packet_count(), 1u);
  s.dequeue();
  EXPECT_TRUE(s.empty());
}

TEST(StrictPriority, RejectsZeroClasses) {
  EXPECT_THROW(StrictPriorityScheduler(0), std::invalid_argument);
}

TEST(StrictPriority, HighPriorityAlwaysFirst) {
  StrictPriorityScheduler s(4);
  s.enqueue(qp(1, 3));
  s.enqueue(qp(2, 0));
  s.enqueue(qp(3, 1));
  EXPECT_EQ(s.dequeue()->pkt.flow, make_flow(2));  // prio 0 first
  EXPECT_EQ(s.dequeue()->pkt.flow, make_flow(3));
  EXPECT_EQ(s.dequeue()->pkt.flow, make_flow(1));
}

TEST(StrictPriority, FifoWithinClass) {
  StrictPriorityScheduler s(2);
  s.enqueue(qp(1, 1));
  s.enqueue(qp(2, 1));
  s.enqueue(qp(3, 1));
  EXPECT_EQ(s.dequeue()->pkt.flow, make_flow(1));
  EXPECT_EQ(s.dequeue()->pkt.flow, make_flow(2));
  EXPECT_EQ(s.dequeue()->pkt.flow, make_flow(3));
}

TEST(StrictPriority, OutOfRangePriorityClampsToLastClass) {
  StrictPriorityScheduler s(2);
  s.enqueue(qp(1, 7));  // clamped to class 1
  s.enqueue(qp(2, 0));
  EXPECT_EQ(s.dequeue()->pkt.flow, make_flow(2));
  EXPECT_EQ(s.dequeue()->pkt.flow, make_flow(1));
}

TEST(Drr, RejectsBadParams) {
  EXPECT_THROW(DrrScheduler(0, 100), std::invalid_argument);
  EXPECT_THROW(DrrScheduler(2, 0), std::invalid_argument);
}

TEST(Drr, SingleClassBehavesLikeFifo) {
  DrrScheduler s(1, 1500);
  for (std::uint32_t i = 0; i < 4; ++i) s.enqueue(qp(i));
  for (std::uint32_t i = 0; i < 4; ++i) {
    EXPECT_EQ(s.dequeue()->pkt.flow, make_flow(i));
  }
}

TEST(Drr, SharesBandwidthEquallyForEqualSizes) {
  DrrScheduler s(2, 200);
  // Backlog both classes with equal-size packets.
  for (int i = 0; i < 100; ++i) {
    s.enqueue(qp(0, 0, 100));
    s.enqueue(qp(1, 1, 100));
  }
  int count0 = 0;
  for (int i = 0; i < 100; ++i) {
    auto p = s.dequeue();
    ASSERT_TRUE(p.has_value());
    if (p->pkt.flow == make_flow(0)) ++count0;
  }
  EXPECT_NEAR(count0, 50, 5);
}

TEST(Drr, ByteFairnessWithUnequalSizes) {
  // Class 0 sends 1500 B packets, class 1 sends 100 B packets; byte shares
  // should be roughly equal, so class 1 dequeues ~15x more packets.
  DrrScheduler s(2, 1500);
  for (int i = 0; i < 200; ++i) s.enqueue(qp(0, 0, 1500));
  for (int i = 0; i < 3000; ++i) s.enqueue(qp(1, 1, 100));
  std::uint64_t bytes0 = 0, bytes1 = 0;
  for (int i = 0; i < 1000; ++i) {
    auto p = s.dequeue();
    ASSERT_TRUE(p.has_value());
    (p->pkt.priority == 0 ? bytes0 : bytes1) += p->pkt.size_bytes;
  }
  const double ratio = static_cast<double>(bytes0) /
                       static_cast<double>(bytes1);
  EXPECT_GT(ratio, 0.8);
  EXPECT_LT(ratio, 1.25);
}

TEST(Drr, DrainsCompletely) {
  DrrScheduler s(3, 500);
  for (std::uint32_t i = 0; i < 30; ++i) {
    s.enqueue(qp(i, static_cast<std::uint8_t>(i % 3)));
  }
  int n = 0;
  while (s.dequeue().has_value()) ++n;
  EXPECT_EQ(n, 30);
  EXPECT_TRUE(s.empty());
}

TEST(MakeScheduler, BuildsEachKind) {
  EXPECT_NE(make_scheduler(SchedulerKind::kFifo), nullptr);
  EXPECT_NE(make_scheduler(SchedulerKind::kStrictPriority, 4), nullptr);
  EXPECT_NE(make_scheduler(SchedulerKind::kDrr, 4, 1500), nullptr);
}

}  // namespace
}  // namespace pq::sim
