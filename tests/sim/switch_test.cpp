#include "sim/switch.h"

#include <gtest/gtest.h>

namespace pq::sim {
namespace {

Packet pkt(std::uint32_t flow, Timestamp t) {
  Packet p;
  p.flow = make_flow(flow);
  p.size_bytes = 500;
  p.arrival_ns = t;
  return p;
}

std::vector<PortConfig> two_ports() {
  PortConfig a;
  a.port_id = 0;
  PortConfig b;
  b.port_id = 1;
  return {a, b};
}

TEST(Switch, RejectsZeroPorts) {
  EXPECT_THROW(Switch{std::vector<PortConfig>{}}, std::invalid_argument);
}

TEST(Switch, ForwardsByFunction) {
  Switch sw(two_ports());
  sw.set_forwarding([](const Packet& p) {
    return p.flow.dst_port % 2 == 0 ? 0u : 1u;
  });
  std::vector<Packet> pkts;
  for (std::uint32_t i = 0; i < 100; ++i) pkts.push_back(pkt(i, i * 10));
  sw.run(std::move(pkts));
  EXPECT_EQ(sw.port(0).records().size() + sw.port(1).records().size(), 100u);
  EXPECT_GT(sw.port(0).records().size(), 0u);
  EXPECT_GT(sw.port(1).records().size(), 0u);
  for (const auto& r : sw.port(0).records()) {
    EXPECT_EQ(r.flow.dst_port % 2, 0);
  }
}

TEST(Switch, DefaultForwardingSpreadsFlows) {
  Switch sw(two_ports());
  std::vector<Packet> pkts;
  for (std::uint32_t i = 0; i < 400; ++i) pkts.push_back(pkt(i, i));
  sw.run(std::move(pkts));
  EXPECT_GT(sw.port(0).records().size(), 100u);
  EXPECT_GT(sw.port(1).records().size(), 100u);
}

TEST(Switch, SameFlowAlwaysSamePort) {
  Switch sw(two_ports());
  std::vector<Packet> pkts;
  for (std::uint32_t i = 0; i < 50; ++i) pkts.push_back(pkt(7, i * 100));
  sw.run(std::move(pkts));
  const bool on0 = !sw.port(0).records().empty();
  const bool on1 = !sw.port(1).records().empty();
  EXPECT_NE(on0, on1);  // all on exactly one port
}

TEST(Switch, InvalidForwardingThrows) {
  Switch sw(two_ports());
  sw.set_forwarding([](const Packet&) { return 99u; });
  EXPECT_THROW(sw.run({pkt(1, 0)}), std::out_of_range);
}

TEST(Switch, HookAllReachesEveryPort) {
  struct Probe : EgressHook {
    int count = 0;
    void on_egress(const EgressContext&) override { ++count; }
  } probe;
  Switch sw(two_ports());
  sw.add_hook_all(&probe);
  std::vector<Packet> pkts;
  for (std::uint32_t i = 0; i < 100; ++i) pkts.push_back(pkt(i, i * 5));
  sw.run(std::move(pkts));
  EXPECT_EQ(probe.count, 100);
}

TEST(Switch, PortIdsAppearInRecords) {
  Switch sw(two_ports());
  std::vector<Packet> pkts;
  for (std::uint32_t i = 0; i < 64; ++i) pkts.push_back(pkt(i, i * 3));
  sw.run(std::move(pkts));
  for (const auto& r : sw.port(1).records()) EXPECT_EQ(r.egress_port, 1u);
  for (const auto& r : sw.port(0).records()) EXPECT_EQ(r.egress_port, 0u);
}

}  // namespace
}  // namespace pq::sim
