#include "sim/sharded_engine.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "sim/switch.h"

namespace pq::sim {
namespace {

Packet pkt(std::uint32_t flow, Timestamp t, std::uint32_t hint = 0) {
  Packet p;
  p.flow = make_flow(flow);
  p.size_bytes = 500;
  p.arrival_ns = t;
  p.egress_hint = hint;
  return p;
}

std::vector<PortConfig> ports(std::uint32_t n) {
  std::vector<PortConfig> cfgs(n);
  for (std::uint32_t i = 0; i < n; ++i) cfgs[i].port_id = i;
  return cfgs;
}

std::vector<Packet> workload(std::uint32_t n_ports, std::uint32_t n_pkts) {
  std::vector<Packet> pkts;
  for (std::uint32_t i = 0; i < n_pkts; ++i) {
    pkts.push_back(pkt(i, i * 120, i % n_ports));
  }
  return pkts;
}

TEST(ShardedEngine, RejectsZeroPorts) {
  EXPECT_THROW(ShardedEngine{std::vector<PortConfig>{}},
               std::invalid_argument);
}

TEST(ShardedEngine, PartitionPreservesPerPortArrivalOrder) {
  const auto pkts = workload(3, 300);
  const auto shards = ShardedEngine::partition(
      pkts, [](const Packet& p) { return p.egress_hint; }, 3);
  ASSERT_EQ(shards.size(), 3u);
  std::size_t total = 0;
  for (std::uint32_t s = 0; s < 3; ++s) {
    total += shards[s].size();
    EXPECT_TRUE(std::is_sorted(shards[s].begin(), shards[s].end(),
                               [](const Packet& a, const Packet& b) {
                                 return a.arrival_ns < b.arrival_ns;
                               }));
    for (const auto& p : shards[s]) EXPECT_EQ(p.egress_hint, s);
  }
  EXPECT_EQ(total, 300u);
}

TEST(ShardedEngine, InvalidForwardingThrows) {
  ShardedEngine eng(ports(2));
  eng.set_forwarding([](const Packet&) { return 99u; });
  EXPECT_THROW(eng.run({pkt(1, 0)}, 1), std::out_of_range);
  ShardedEngine eng2(ports(2));
  eng2.set_forwarding([](const Packet&) { return 99u; });
  EXPECT_THROW(eng2.run(workload(2, 64), 2), std::out_of_range);
}

TEST(ShardedEngine, UnsortedInputIsSorted) {
  ShardedEngine eng(ports(1));
  eng.set_forwarding([](const Packet&) { return 0u; });
  std::vector<Packet> pkts = {pkt(1, 5000), pkt(2, 0), pkt(3, 2500)};
  eng.run(std::move(pkts), 1);
  EXPECT_EQ(eng.port(0).records().size(), 3u);
  EXPECT_EQ(eng.port(0).records().front().flow, make_flow(2));
}

// Per-port outputs must not depend on the thread count: the records of a
// parallel run are byte-identical to the single-threaded run's.
TEST(ShardedEngine, ThreadCountInvariantRecords) {
  const auto pkts = workload(4, 2000);
  auto run_with = [&](unsigned threads) {
    ShardedEngine eng(ports(4));
    eng.set_forwarding([](const Packet& p) { return p.egress_hint; });
    eng.run(pkts, threads);
    return eng.merged_records();
  };
  const auto base = run_with(1);
  ASSERT_EQ(base.size(), 2000u);
  for (const unsigned threads : {2u, 4u, 8u}) {
    const auto other = run_with(threads);
    ASSERT_EQ(other.size(), base.size());
    for (std::size_t i = 0; i < base.size(); ++i) {
      EXPECT_EQ(base[i].packet_id, other[i].packet_id);
      EXPECT_EQ(base[i].flow, other[i].flow);
      EXPECT_EQ(base[i].enq_timestamp, other[i].enq_timestamp);
      EXPECT_EQ(base[i].deq_timedelta, other[i].deq_timedelta);
      EXPECT_EQ(base[i].enq_qdepth, other[i].enq_qdepth);
      EXPECT_EQ(base[i].egress_port, other[i].egress_port);
    }
  }
}

TEST(ShardedEngine, MergedRecordsAreDequeueOrdered) {
  ShardedEngine eng(ports(3));
  eng.set_forwarding([](const Packet& p) { return p.egress_hint; });
  eng.run(workload(3, 900), 3);
  const auto merged = eng.merged_records();
  ASSERT_EQ(merged.size(), 900u);
  EXPECT_TRUE(std::is_sorted(
      merged.begin(), merged.end(),
      [](const wire::TelemetryRecord& a, const wire::TelemetryRecord& b) {
        return a.deq_timestamp() < b.deq_timestamp();
      }));
}

TEST(ShardedEngine, MoreThreadsThanPortsIsFine) {
  ShardedEngine eng(ports(2));
  eng.set_forwarding([](const Packet& p) { return p.egress_hint; });
  eng.run(workload(2, 100), 16);
  EXPECT_EQ(eng.port(0).records().size() + eng.port(1).records().size(),
            100u);
}

// The Switch facade (single worker) must agree with the engine exactly —
// it is the same partition-and-drain path.
TEST(ShardedEngine, SwitchFacadeMatchesEngine) {
  const auto pkts = workload(2, 500);
  Switch sw(ports(2));
  sw.set_forwarding([](const Packet& p) { return p.egress_hint; });
  sw.run(pkts);
  ShardedEngine eng(ports(2));
  eng.set_forwarding([](const Packet& p) { return p.egress_hint; });
  eng.run(pkts, 2);
  for (std::uint32_t p = 0; p < 2; ++p) {
    ASSERT_EQ(sw.port(p).records().size(), eng.port(p).records().size());
    for (std::size_t i = 0; i < sw.port(p).records().size(); ++i) {
      EXPECT_EQ(sw.port(p).records()[i].packet_id,
                eng.port(p).records()[i].packet_id);
      EXPECT_EQ(sw.port(p).records()[i].deq_timedelta,
                eng.port(p).records()[i].deq_timedelta);
    }
  }
}

}  // namespace
}  // namespace pq::sim
