#include "sim/egress_port.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace pq::sim {
namespace {

Packet pkt(std::uint32_t flow, Timestamp t, std::uint32_t bytes = 1000,
           std::uint8_t prio = 0) {
  static std::uint64_t next_id = 1;
  Packet p;
  p.flow = make_flow(flow);
  p.size_bytes = bytes;
  p.arrival_ns = t;
  p.priority = prio;
  p.id = next_id++;
  return p;
}

PortConfig cfg10g() {
  PortConfig c;
  c.line_rate_gbps = 10.0;
  c.capacity_cells = 25000;
  return c;
}

TEST(EgressPort, RejectsBadConfig) {
  PortConfig c;
  c.line_rate_gbps = 0;
  EXPECT_THROW(EgressPort{c}, std::invalid_argument);
  c = PortConfig{};
  c.capacity_cells = 0;
  EXPECT_THROW(EgressPort{c}, std::invalid_argument);
}

TEST(EgressPort, IdlePacketLeavesImmediately) {
  EgressPort port(cfg10g());
  port.run({pkt(1, 1000)});
  ASSERT_EQ(port.records().size(), 1u);
  const auto& r = port.records()[0];
  EXPECT_EQ(r.enq_timestamp, 1000u);
  EXPECT_EQ(r.deq_timedelta, 0u);  // no queuing on an idle port
  EXPECT_EQ(r.enq_qdepth, 0u);
}

TEST(EgressPort, BackToBackPacketsQueueBehindSerializer) {
  EgressPort port(cfg10g());
  // 1000 B at 10 Gb/s = 800 ns service time; second packet arrives at +100.
  port.run({pkt(1, 0), pkt(2, 100)});
  ASSERT_EQ(port.records().size(), 2u);
  EXPECT_EQ(port.records()[1].deq_timestamp(), 800u);
  EXPECT_EQ(port.records()[1].deq_timedelta, 700u);
}

TEST(EgressPort, EnqQdepthSeesEarlierArrivals) {
  EgressPort port(cfg10g());
  // Three simultaneous-ish arrivals; the third sees the first two queued
  // (the head of line goes straight to the serializer only at its deq time,
  // which is t=0 for packet one, so depth drops by then).
  port.run({pkt(1, 0, 800), pkt(2, 10, 800), pkt(3, 20, 800)});
  const auto& r = port.records();
  ASSERT_EQ(r.size(), 3u);
  // Packet 1 dequeues at t=0 before 2 and 3 arrive.
  EXPECT_EQ(r[0].enq_qdepth, 0u);
  EXPECT_EQ(r[1].enq_qdepth, 0u);  // 1 already left the queue
  EXPECT_EQ(r[2].enq_qdepth, bytes_to_cells(800));
}

TEST(EgressPort, ConservationEnqueuedEqualsDequeuedPlusDropped) {
  EgressPort port(cfg10g());
  Rng rng(3);
  std::vector<Packet> pkts;
  Timestamp t = 0;
  for (int i = 0; i < 5000; ++i) {
    t += rng.uniform_below(100);
    pkts.push_back(pkt(static_cast<std::uint32_t>(i % 37), t, 500));
  }
  port.run(std::move(pkts));
  EXPECT_EQ(port.stats().enqueued + port.stats().dropped, 5000u);
  EXPECT_EQ(port.records().size(), port.stats().dequeued);
  EXPECT_EQ(port.stats().enqueued, port.stats().dequeued);  // drained
  EXPECT_EQ(port.depth_cells(), 0u);
}

TEST(EgressPort, FifoPreservesDequeueOrder) {
  EgressPort port(cfg10g());
  Rng rng(5);
  std::vector<Packet> pkts;
  Timestamp t = 0;
  for (int i = 0; i < 1000; ++i) {
    t += rng.uniform_below(200);
    pkts.push_back(pkt(
        1, t, static_cast<std::uint32_t>(64 + rng.uniform_below(1400))));
  }
  port.run(std::move(pkts));
  Timestamp last = 0;
  std::uint64_t last_id = 0;
  for (const auto& r : port.records()) {
    EXPECT_GE(r.deq_timestamp(), last);
    EXPECT_GT(r.packet_id, last_id);  // FIFO: ids in arrival order
    last = r.deq_timestamp();
    last_id = r.packet_id;
  }
}

TEST(EgressPort, DeqGapsRespectLineRate) {
  EgressPort port(cfg10g());
  std::vector<Packet> pkts;
  for (int i = 0; i < 100; ++i) pkts.push_back(pkt(1, 0, 1000));
  port.run(std::move(pkts));
  const auto& r = port.records();
  for (std::size_t i = 1; i < r.size(); ++i) {
    EXPECT_EQ(r[i].deq_timestamp() - r[i - 1].deq_timestamp(), 800u);
  }
}

TEST(EgressPort, TailDropsWhenBufferFull) {
  PortConfig c = cfg10g();
  c.capacity_cells = 100;  // 8 kB buffer
  EgressPort port(c);
  std::vector<Packet> pkts;
  for (int i = 0; i < 50; ++i) pkts.push_back(pkt(1, 0, 800));  // 10 cells each
  port.run(std::move(pkts));
  EXPECT_GT(port.stats().dropped, 0u);
  EXPECT_LE(port.stats().peak_depth_cells, 100u);
  EXPECT_EQ(port.stats().enqueued + port.stats().dropped, 50u);
}

TEST(EgressPort, DropsRecordFlowAndTime) {
  PortConfig c = cfg10g();
  c.capacity_cells = 10;
  EgressPort port(c);
  // Packet 1 goes straight to the serializer; packet 2 fills the buffer;
  // packet 3 arrives while it is still full and is tail-dropped.
  port.run({pkt(1, 0, 800), pkt(2, 0, 800), pkt(3, 1, 800)});
  ASSERT_EQ(port.drops().size(), 1u);
  EXPECT_EQ(port.drops()[0].flow, make_flow(3));
  EXPECT_EQ(port.drops()[0].t, 1u);
}

TEST(EgressPort, RejectsOutOfOrderOffers) {
  EgressPort port(cfg10g());
  port.offer(pkt(1, 100));
  EXPECT_THROW(port.offer(pkt(2, 50)), std::invalid_argument);
}

TEST(EgressPort, DepthSeriesTracksBuildupAndDrain) {
  EgressPort port(cfg10g());
  std::vector<Packet> pkts;
  for (int i = 0; i < 10; ++i) pkts.push_back(pkt(1, 0, 800));
  port.run(std::move(pkts));
  const auto& s = port.depth_series();
  EXPECT_GT(s.peak_depth(0, 10000), 0u);
  EXPECT_EQ(s.samples().back().depth_cells, 0u);  // fully drained
}

TEST(EgressPort, StrictPriorityLetsHighPrioOvertake) {
  PortConfig c = cfg10g();
  c.scheduler = SchedulerKind::kStrictPriority;
  EgressPort port(c);
  // Low-priority backlog, then one high-priority packet.
  std::vector<Packet> pkts;
  for (int i = 0; i < 10; ++i) pkts.push_back(pkt(1, 0, 1000, 3));
  pkts.push_back(pkt(2, 100, 1000, 0));
  port.run(std::move(pkts));
  // The high-priority packet must leave second (one low-prio is serializing).
  ASSERT_GE(port.records().size(), 2u);
  EXPECT_EQ(port.records()[1].flow, make_flow(2));
}

TEST(EgressPort, StrictPriorityStarvesLowUnderLoad) {
  PortConfig c = cfg10g();
  c.scheduler = SchedulerKind::kStrictPriority;
  EgressPort port(c);
  std::vector<Packet> pkts;
  // Over-saturating high-priority stream (750 ns gaps vs 800 ns service)
  // plus one low-priority victim arriving just after it starts.
  pkts.push_back(pkt(1, 0, 1000, 0));
  pkts.push_back(pkt(99, 10, 1000, 7));
  for (int i = 1; i < 100; ++i) {
    pkts.push_back(pkt(1, static_cast<Timestamp>(i) * 750, 1000, 0));
  }
  port.run(std::move(pkts));
  // The victim leaves last.
  EXPECT_EQ(port.records().back().flow, make_flow(99));
  EXPECT_GT(port.records().back().deq_timedelta, 70'000u);
}

TEST(EgressPort, HooksSeeEveryDequeueInOrder) {
  struct Probe : EgressHook {
    std::vector<Timestamp> times;
    void on_egress(const EgressContext& ctx) override {
      times.push_back(ctx.deq_timestamp());
    }
  } probe;
  EgressPort port(cfg10g());
  port.add_hook(&probe);
  std::vector<Packet> pkts;
  for (int i = 0; i < 200; ++i) {
    pkts.push_back(pkt(1, static_cast<Timestamp>(i) * 10, 500));
  }
  port.run(std::move(pkts));
  ASSERT_EQ(probe.times.size(), 200u);
  EXPECT_TRUE(std::is_sorted(probe.times.begin(), probe.times.end()));
}

TEST(EgressPort, RecordsMatchHookContexts) {
  struct Probe : EgressHook {
    std::vector<EgressContext> ctxs;
    void on_egress(const EgressContext& ctx) override {
      ctxs.push_back(ctx);
    }
  } probe;
  EgressPort port(cfg10g());
  port.add_hook(&probe);
  port.run({pkt(1, 0, 640), pkt(2, 5, 640)});
  ASSERT_EQ(probe.ctxs.size(), port.records().size());
  for (std::size_t i = 0; i < probe.ctxs.size(); ++i) {
    EXPECT_EQ(probe.ctxs[i].flow, port.records()[i].flow);
    EXPECT_EQ(probe.ctxs[i].enq_timestamp, port.records()[i].enq_timestamp);
    EXPECT_EQ(probe.ctxs[i].deq_timedelta, port.records()[i].deq_timedelta);
    EXPECT_EQ(probe.ctxs[i].enq_qdepth, port.records()[i].enq_qdepth);
    EXPECT_EQ(probe.ctxs[i].packet_cells, bytes_to_cells(640));
  }
}

TEST(EgressPort, PeakDepthMatchesDepthSeries) {
  EgressPort port(cfg10g());
  Rng rng(9);
  std::vector<Packet> pkts;
  Timestamp t = 0;
  for (int i = 0; i < 2000; ++i) {
    t += rng.uniform_below(300);
    pkts.push_back(pkt(static_cast<std::uint32_t>(i % 11), t, 1200));
  }
  port.run(std::move(pkts));
  std::uint32_t series_peak = 0;
  for (const auto& s : port.depth_series().samples()) {
    series_peak = std::max(series_peak, s.depth_cells);
  }
  EXPECT_EQ(series_peak, port.stats().peak_depth_cells);
}

}  // namespace
}  // namespace pq::sim
