#include "sim/depth_series.h"

#include <gtest/gtest.h>

namespace pq::sim {
namespace {

DepthSeries sample() {
  DepthSeries s;
  s.record(10, 5);
  s.record(20, 0);
  s.record(30, 8);
  s.record(40, 3);
  s.record(50, 0);
  s.record(60, 12);
  return s;
}

TEST(DepthSeries, DepthBeforeFirstSampleIsZero) {
  EXPECT_EQ(sample().depth_at(5), 0u);
}

TEST(DepthSeries, DepthAtIsRightContinuousStep) {
  const auto s = sample();
  EXPECT_EQ(s.depth_at(10), 5u);
  EXPECT_EQ(s.depth_at(15), 5u);
  EXPECT_EQ(s.depth_at(20), 0u);
  EXPECT_EQ(s.depth_at(35), 8u);
  EXPECT_EQ(s.depth_at(100), 12u);
}

TEST(DepthSeries, SameTimestampOverwrites) {
  DepthSeries s;
  s.record(10, 5);
  s.record(10, 7);
  EXPECT_EQ(s.depth_at(10), 7u);
  EXPECT_EQ(s.samples().size(), 1u);
}

TEST(DepthSeries, RegimeStartFindsLastEmptyInstant) {
  const auto s = sample();
  EXPECT_EQ(s.regime_start(45), 20u);
  EXPECT_EQ(s.regime_start(70), 50u);
  EXPECT_EQ(s.regime_start(15), 0u);  // never empty before 15
}

TEST(DepthSeries, PeakDepthOverRange) {
  const auto s = sample();
  EXPECT_EQ(s.peak_depth(25, 45), 8u);
  EXPECT_EQ(s.peak_depth(0, 100), 12u);
  EXPECT_EQ(s.peak_depth(41, 49), 3u);  // inherits depth at range start
}

TEST(DepthSeries, DownsampleKeepsEndpoints) {
  DepthSeries s;
  for (Timestamp t = 0; t < 1000; ++t) {
    s.record(t, static_cast<std::uint32_t>(t % 50));
  }
  const auto d = s.downsample(10);
  EXPECT_LE(d.size(), 11u);
  EXPECT_EQ(d.front().t, 0u);
  EXPECT_EQ(d.back().t, 999u);
}

TEST(DepthSeries, DownsampleNoOpWhenSmall) {
  const auto s = sample();
  EXPECT_EQ(s.downsample(100).size(), s.samples().size());
}

}  // namespace
}  // namespace pq::sim
