// Randomized invariants of the culprit definitions (paper Section 2),
// checked against simulator output: the three culprit classes partition
// and bound each other exactly as the taxonomy prescribes.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "ground/ground_truth.h"
#include "sim/egress_port.h"
#include "traffic/trace_gen.h"

namespace pq::ground {
namespace {

class GroundTruthProperty : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  void SetUp() override {
    sim::PortConfig cfg;
    cfg.capacity_cells = 5000;
    port_ = std::make_unique<sim::EgressPort>(cfg);
    traffic::PacketTraceConfig tcfg;
    tcfg.duration_ns = 5'000'000;
    tcfg.seed = GetParam();
    port_->run(traffic::generate_uw_trace(tcfg));
    truth_ = std::make_unique<GroundTruth>(port_->records());
  }
  std::unique_ptr<sim::EgressPort> port_;
  std::unique_ptr<GroundTruth> truth_;
};

double total(const FlowCounts& c) {
  double t = 0;
  for (const auto& [f, n] : c) t += n;
  return t;
}

TEST_P(GroundTruthProperty, DirectPlusIndirectEqualsRegime) {
  // Union of direct and indirect culprits = all packets dequeued since the
  // regime began (paper Section 2: "The union of direct and indirect
  // culprits equals the complete congestion regime").
  Rng rng(1);
  const auto& recs = port_->records();
  for (int trial = 0; trial < 25; ++trial) {
    const auto& v = recs[rng.uniform_below(recs.size())];
    if (v.deq_timedelta == 0) continue;
    const Timestamp t1 = v.enq_timestamp;
    const Timestamp t2 = v.deq_timestamp();
    const Timestamp regime = truth_->regime_start(t1);

    const auto direct = truth_->direct_culprits(t1, t2);
    const auto indirect = truth_->indirect_culprits(t1);
    const auto whole = truth_->direct_culprits(
        regime == 0 ? 0 : regime + 1, t2);
    EXPECT_NEAR(total(direct) + total(indirect), total(whole), 1e-9);
  }
}

TEST_P(GroundTruthProperty, RegimeStartHasEmptyQueue) {
  Rng rng(2);
  const auto& recs = port_->records();
  for (int trial = 0; trial < 25; ++trial) {
    const auto& v = recs[rng.uniform_below(recs.size())];
    const Timestamp regime = truth_->regime_start(v.enq_timestamp);
    if (regime == 0) continue;  // queue busy since the start of the run
    EXPECT_EQ(truth_->depth_at(regime), 0u);
  }
}

TEST_P(GroundTruthProperty, RegimeStartIsStableWithinTheRegime) {
  // regime_start(enq) is the LAST drain instant at or before the enqueue,
  // so no later drain event exists inside (regime, enq]: querying the
  // regime start from any instant in between returns the same boundary.
  // (The queue may sit empty between the drain and the next enqueue, so
  // "depth > 0 everywhere" is NOT the invariant — this is.)
  Rng rng(3);
  const auto& recs = port_->records();
  int checked = 0;
  for (int trial = 0; trial < 2000 && checked < 10; ++trial) {
    const auto& v = recs[rng.uniform_below(recs.size())];
    if (v.enq_qdepth < 20) continue;
    const Timestamp regime = truth_->regime_start(v.enq_timestamp);
    if (v.enq_timestamp - regime < 2000) continue;
    ++checked;
    Rng probe(trial);
    for (int s = 0; s < 20; ++s) {
      const Timestamp t =
          regime + 1 +
          probe.uniform_below(v.enq_timestamp - regime - 1);
      EXPECT_EQ(truth_->regime_start(t), regime)
          << "drain event found inside the regime at " << t;
    }
  }
  if (checked == 0) GTEST_SKIP() << "no congested victims in this seed";
}

TEST_P(GroundTruthProperty, OriginalCulpritsCountBoundedByDepth) {
  // At any instant, the number of original-culprit packets is at most the
  // queue depth in cells (each packet accounts for >= 1 cell) and at least
  // 1 when the queue is non-empty.
  Rng rng(4);
  const Timestamp end = port_->stats().last_departure;
  for (int trial = 0; trial < 40; ++trial) {
    const Timestamp t = rng.uniform_below(end);
    const auto culprits = truth_->original_culprits(t);
    const auto depth = truth_->depth_at(t);
    if (depth == 0) {
      EXPECT_TRUE(culprits.empty());
    } else {
      EXPECT_GE(total(culprits), 1.0);
      EXPECT_LE(total(culprits), static_cast<double>(depth));
    }
  }
}

TEST_P(GroundTruthProperty, DirectCulpritsOfZeroDelayVictimAreEmpty) {
  for (const auto& r : port_->records()) {
    if (r.deq_timedelta == 0) {
      EXPECT_TRUE(truth_->direct_culprits(r.enq_timestamp,
                                          r.deq_timestamp())
                      .empty());
      break;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GroundTruthProperty,
                         ::testing::Values(11u, 23u, 47u));

}  // namespace
}  // namespace pq::ground
