#include "ground/ground_truth.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "sim/egress_port.h"

namespace pq::ground {
namespace {

TelemetryRecord rec(std::uint32_t flow, Timestamp enq, Timestamp deq,
                    std::uint32_t bytes = 80, std::uint32_t qdepth = 0) {
  TelemetryRecord r;
  r.flow = make_flow(flow);
  r.size_bytes = bytes;
  r.enq_timestamp = enq;
  r.deq_timedelta = deq - enq;
  r.enq_qdepth = qdepth;
  return r;
}

TEST(GroundTruth, DirectCulpritsAreDequeuesWithinInterval) {
  GroundTruth gt({rec(1, 0, 10), rec(2, 0, 20), rec(2, 5, 30),
                  rec(3, 5, 40)});
  const auto direct = gt.direct_culprits(15, 35);
  EXPECT_EQ(direct.size(), 1u);
  EXPECT_DOUBLE_EQ(direct.at(make_flow(2)), 2.0);
}

TEST(GroundTruth, DirectCulpritsBoundariesAreHalfOpen) {
  GroundTruth gt({rec(1, 0, 10), rec(2, 0, 20)});
  EXPECT_EQ(gt.direct_culprits(10, 20).size(), 1u);   // 10 in, 20 out
  EXPECT_TRUE(gt.direct_culprits(10, 20).contains(make_flow(1)));
}

TEST(GroundTruth, RegimeStartIsLastEmptyInstant) {
  // Packet A occupies [0,10); gap; B and C overlap [20,40).
  GroundTruth gt({rec(1, 0, 10), rec(2, 20, 30), rec(3, 25, 40)});
  // At t=35 the queue has been continuously busy since t=20 (A's dequeue at
  // 10 emptied it).
  EXPECT_EQ(gt.regime_start(35), 10u);
  EXPECT_EQ(gt.regime_start(5), 0u);  // never empty before 5
}

TEST(GroundTruth, IndirectCulpritsStopAtRegimeBoundary) {
  // A leaves before the regime (queue empty at 10); B leaves inside it.
  GroundTruth gt({rec(1, 0, 10), rec(2, 20, 30), rec(3, 25, 50),
                  rec(4, 35, 60)});
  // Victim enqueued at 45: regime start is 10 (the last zero); B dequeued at
  // 30 and C at 50 -> only B is an indirect culprit (deq < 45).
  const auto indirect = gt.indirect_culprits(45);
  EXPECT_TRUE(indirect.contains(make_flow(2)));
  EXPECT_FALSE(indirect.contains(make_flow(1)));  // before... A deq at 10
  EXPECT_FALSE(indirect.contains(make_flow(3)));  // dequeues after 45
}

TEST(GroundTruth, DepthAtReconstructsCells) {
  // Two 160 B packets (2 cells each) overlapping in the queue.
  GroundTruth gt({rec(1, 0, 100, 160), rec(2, 10, 200, 160)});
  EXPECT_EQ(gt.depth_at(5), 2u);
  EXPECT_EQ(gt.depth_at(50), 4u);
  EXPECT_EQ(gt.depth_at(150), 2u);
  EXPECT_EQ(gt.depth_at(250), 0u);
}

TEST(GroundTruth, DepthMatchesSimulatorEnqQdepth) {
  // Property check: reconstructing depth from records reproduces each
  // packet's own enq_qdepth observation.
  sim::PortConfig pc;
  pc.line_rate_gbps = 10.0;
  sim::EgressPort port(pc);
  Rng rng(5);
  std::vector<Packet> pkts;
  Timestamp t = 0;
  for (int i = 0; i < 3000; ++i) {
    t += 1 + rng.uniform_below(200);  // strictly increasing arrivals
    Packet p;
    p.flow = make_flow(static_cast<std::uint32_t>(i % 13));
    p.size_bytes = 64 + static_cast<std::uint32_t>(rng.uniform_below(1400));
    p.arrival_ns = t;
    p.id = static_cast<std::uint64_t>(i) + 1;
    pkts.push_back(p);
  }
  port.run(std::move(pkts));
  GroundTruth gt(port.records());
  for (const auto& r : port.records()) {
    // The reconstructed depth right after this packet's enqueue equals its
    // own observation plus its own footprint — unless the packet left
    // immediately (zero delay), in which case its same-instant dequeue has
    // already been applied.
    const std::uint32_t own =
        r.deq_timedelta == 0 ? 0 : bytes_to_cells(r.size_bytes);
    EXPECT_EQ(gt.depth_at(r.enq_timestamp), r.enq_qdepth + own)
        << "packet " << r.packet_id;
  }
}

TEST(GroundTruth, OriginalCulpritsTrackBuildupSegments) {
  // A brings depth 0->1, B 1->3 (160 B), drain to 1, C 1->2.
  GroundTruth gt({rec(1, 0, 100, 80), rec(2, 10, 150, 160),
                  rec(3, 60, 200, 80)});
  // At t=70: A still queued (deq 100), B dequeued at 150? No: B deq at 150,
  // so at 70 the stack is A[0,1), B[1,3), C[3,4).
  const auto at70 = gt.original_culprits(70);
  EXPECT_DOUBLE_EQ(at70.at(make_flow(1)), 1.0);
  EXPECT_DOUBLE_EQ(at70.at(make_flow(2)), 1.0);
  EXPECT_DOUBLE_EQ(at70.at(make_flow(3)), 1.0);
  // At t=160 (after A and B dequeued): depth 1; only the lowest segment's
  // creator remains culpable. A dequeued at 100 (depth 3->... order: A at
  // 100 pops the stack from below; the truncation keeps the oldest segment
  // holders for the remaining depth.
  const auto at160 = gt.original_culprits(160);
  double total = 0;
  for (const auto& [f, n] : at160) total += n;
  EXPECT_DOUBLE_EQ(total, 1.0);
}

TEST(GroundTruth, OriginalCulpritsAfterFullDrainAreEmpty) {
  GroundTruth gt({rec(1, 0, 10), rec(2, 5, 20)});
  EXPECT_TRUE(gt.original_culprits(100).empty());
}

TEST(GroundTruth, OriginalCulpritsBurstScenario) {
  // The paper's case-study shape in miniature: a burst builds the queue,
  // then background traffic holds it. Original culprits at a late time
  // must still implicate the burst.
  std::vector<TelemetryRecord> recs;
  // Burst: 10 packets arriving back-to-back at t=0..9, 80 B each, queue
  // grows to 10 cells; they dequeue at 100, 200, ..., 1000.
  for (std::uint32_t i = 0; i < 10; ++i) {
    recs.push_back(rec(100, i, (i + 1) * 100));
  }
  // Background: one packet arrives whenever one dequeues, keeping depth 10.
  for (std::uint32_t i = 0; i < 5; ++i) {
    recs.push_back(rec(200, (i + 1) * 100, 1100 + i * 100));
  }
  GroundTruth gt(recs);
  const auto culprits = gt.original_culprits(550);
  ASSERT_TRUE(culprits.contains(make_flow(100)));
  // The burst still owns the upper segments of the standing queue.
  EXPECT_GT(culprits.at(make_flow(100)), 4.0);
}

TEST(PaperDepthBins, MatchFig9) {
  const auto bins = paper_depth_bins();
  ASSERT_EQ(bins.size(), 6u);
  EXPECT_EQ(bins[0].first, 1000u);
  EXPECT_EQ(bins[0].second, 2000u);
  EXPECT_EQ(bins[5].first, 20000u);
}

TEST(SampleVictims, RespectsBinsAndCount) {
  std::vector<TelemetryRecord> recs;
  for (std::uint32_t i = 0; i < 100; ++i) {
    recs.push_back(rec(i, i, i + 10, 80, 1500));       // bin 0
    recs.push_back(rec(i, i, i + 10, 80, 3000));       // bin 1
  }
  Rng rng(7);
  const auto victims =
      sample_victims(recs, paper_depth_bins(), 20, rng);
  EXPECT_EQ(victims.size(), 40u);  // two populated bins
  for (const auto& v : victims) {
    if (v.depth_bin == 0) {
      EXPECT_GE(v.record.enq_qdepth, 1000u);
      EXPECT_LT(v.record.enq_qdepth, 2000u);
    }
  }
}

TEST(SampleVictims, SkipsEmptyBins) {
  std::vector<TelemetryRecord> recs{rec(1, 0, 10, 80, 500)};  // below bin 0
  Rng rng(9);
  EXPECT_TRUE(sample_victims(recs, paper_depth_bins(), 10, rng).empty());
}

}  // namespace
}  // namespace pq::ground
