#include "ground/metrics.h"

#include <gtest/gtest.h>

namespace pq::ground {
namespace {

using core::FlowCounts;

TEST(Metrics, PerfectEstimateScoresOne) {
  const FlowCounts truth{{make_flow(1), 5.0}, {make_flow(2), 3.0}};
  const auto pr = flow_count_accuracy(truth, truth);
  EXPECT_DOUBLE_EQ(pr.precision, 1.0);
  EXPECT_DOUBLE_EQ(pr.recall, 1.0);
  EXPECT_DOUBLE_EQ(pr.f1(), 1.0);
}

TEST(Metrics, BothEmptyIsPerfect) {
  const auto pr = flow_count_accuracy({}, {});
  EXPECT_DOUBLE_EQ(pr.precision, 1.0);
  EXPECT_DOUBLE_EQ(pr.recall, 1.0);
}

TEST(Metrics, EmptyEstimateHasZeroRecall) {
  const FlowCounts truth{{make_flow(1), 5.0}};
  const auto pr = flow_count_accuracy({}, truth);
  EXPECT_DOUBLE_EQ(pr.precision, 0.0);
  EXPECT_DOUBLE_EQ(pr.recall, 0.0);
  EXPECT_DOUBLE_EQ(pr.f1(), 0.0);
}

TEST(Metrics, SpuriousFlowsHurtPrecisionOnly) {
  const FlowCounts truth{{make_flow(1), 4.0}};
  const FlowCounts est{{make_flow(1), 4.0}, {make_flow(2), 4.0}};
  const auto pr = flow_count_accuracy(est, truth);
  EXPECT_DOUBLE_EQ(pr.precision, 0.5);
  EXPECT_DOUBLE_EQ(pr.recall, 1.0);
}

TEST(Metrics, MissedFlowsHurtRecallOnly) {
  const FlowCounts truth{{make_flow(1), 4.0}, {make_flow(2), 4.0}};
  const FlowCounts est{{make_flow(1), 4.0}};
  const auto pr = flow_count_accuracy(est, truth);
  EXPECT_DOUBLE_EQ(pr.precision, 1.0);
  EXPECT_DOUBLE_EQ(pr.recall, 0.5);
}

TEST(Metrics, OverestimateClampsTruePositivesAtTruth) {
  // Paper Section 7.1: TP per flow is min(estimate, truth).
  const FlowCounts truth{{make_flow(1), 2.0}};
  const FlowCounts est{{make_flow(1), 8.0}};
  const auto pr = flow_count_accuracy(est, truth);
  EXPECT_DOUBLE_EQ(pr.precision, 0.25);
  EXPECT_DOUBLE_EQ(pr.recall, 1.0);
}

TEST(Metrics, UnderestimateSymmetric) {
  const FlowCounts truth{{make_flow(1), 8.0}};
  const FlowCounts est{{make_flow(1), 2.0}};
  const auto pr = flow_count_accuracy(est, truth);
  EXPECT_DOUBLE_EQ(pr.precision, 1.0);
  EXPECT_DOUBLE_EQ(pr.recall, 0.25);
}

TEST(Metrics, MixedCase) {
  const FlowCounts truth{{make_flow(1), 10.0}, {make_flow(2), 10.0}};
  const FlowCounts est{{make_flow(1), 5.0},   // tp 5
                       {make_flow(2), 15.0},  // tp 10
                       {make_flow(3), 5.0}};  // tp 0
  const auto pr = flow_count_accuracy(est, truth);
  EXPECT_DOUBLE_EQ(pr.precision, 15.0 / 25.0);
  EXPECT_DOUBLE_EQ(pr.recall, 15.0 / 20.0);
}

TEST(TopKAccuracy, ZeroKMeansAllFlows) {
  const FlowCounts truth{{make_flow(1), 5.0}};
  const FlowCounts est{{make_flow(1), 5.0}};
  const auto pr = top_k_accuracy(est, truth, 0);
  EXPECT_DOUBLE_EQ(pr.precision, 1.0);
}

TEST(TopKAccuracy, RestrictsToHeaviestFlows) {
  FlowCounts truth, est;
  // 10 heavy flows predicted perfectly, 100 mice missed entirely.
  for (std::uint32_t i = 0; i < 10; ++i) {
    truth[make_flow(i)] = 1000.0;
    est[make_flow(i)] = 1000.0;
  }
  for (std::uint32_t i = 100; i < 200; ++i) truth[make_flow(i)] = 1.0;
  const auto top10 = top_k_accuracy(est, truth, 10);
  EXPECT_DOUBLE_EQ(top10.precision, 1.0);
  EXPECT_DOUBLE_EQ(top10.recall, 1.0);
  // Over all flows, recall drops because of the missed mice.
  const auto all = flow_count_accuracy(est, truth);
  EXPECT_LT(all.recall, 1.0);
}

TEST(TopKAccuracy, SpuriousHeavyEstimateHurtsTopKPrecision) {
  FlowCounts truth{{make_flow(1), 100.0}};
  FlowCounts est{{make_flow(1), 100.0}, {make_flow(9), 500.0}};
  const auto pr = top_k_accuracy(est, truth, 2);
  EXPECT_DOUBLE_EQ(pr.precision, 100.0 / 600.0);
  EXPECT_DOUBLE_EQ(pr.recall, 1.0);
}

}  // namespace
}  // namespace pq::ground
