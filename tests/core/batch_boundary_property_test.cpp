// Property test for the absorb_run() caller contract (docs/ARCHITECTURE.md
// §10): splitting one packet stream into arbitrary consecutive runs — any
// lengths, including runs that end right before or after a bank rotation —
// leaves TimeWindowSet and QueueMonitor in exactly the state the scalar
// per-packet path produces. Rotations (flip_periodic) and data-plane query
// freezes (begin/end_dataplane_query) are interleaved at random between
// runs, never inside one, which is precisely what PrintQueuePipeline's
// batch splitter guarantees; all four register banks must match, not just
// the active one.
#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"
#include "common/simd/dispatch.h"
#include "core/queue_monitor.h"
#include "core/time_windows.h"

namespace pq::core {
namespace {

/// Dispatch levels to sweep the batched side across (the scalar per-packet
/// oracle never enters a SIMD kernel, so only the batched object cares).
/// {kScalar} on hosts without AVX2 — the property still holds, vacuously
/// for the vector path.
std::vector<simd::Level> sweep_levels() {
  std::vector<simd::Level> v{simd::Level::kScalar};
  if (simd::supported(simd::Level::kAvx2)) v.push_back(simd::Level::kAvx2);
  return v;
}

class ScopedLevel {
 public:
  explicit ScopedLevel(simd::Level level) { simd::set_active_level(level); }
  ~ScopedLevel() { simd::configure(); }
};

struct Stream {
  std::vector<FlowId> flows;
  std::vector<Timestamp> deq;
  std::vector<std::uint32_t> depth;
};

/// A congested-looking random stream: mostly small timestamp advances with
/// occasional same-tick repeats and idle jumps, so eviction chains of every
/// depth and wrap-around cycles all occur.
Stream random_stream(std::uint64_t seed, std::size_t n) {
  Rng rng(seed);
  Stream s;
  Timestamp t = 1'000;
  std::uint32_t depth = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const auto roll = rng.uniform_below(100);
    if (roll < 20) {
      // same tick: several dequeues within one window cell
    } else if (roll < 90) {
      t += 200 + rng.uniform_below(2'000);
    } else {
      t += 100'000 + rng.uniform_below(400'000);  // idle gap
    }
    depth = static_cast<std::uint32_t>(rng.uniform_below(2'500));
    s.flows.push_back(make_flow(static_cast<std::uint32_t>(
        rng.uniform_below(37))));
    s.deq.push_back(t);
    s.depth.push_back(depth + 1);
  }
  return s;
}

/// Mirrors one random interleaving of control-plane events between runs.
/// `code` at step i: 0 = nothing, 1 = flip_periodic, 2 = toggle data-plane
/// query (begin if unlocked, end if locked).
std::vector<int> random_events(std::uint64_t seed, std::size_t steps) {
  Rng rng(seed);
  std::vector<int> ev(steps);
  for (auto& e : ev) {
    const auto roll = rng.uniform_below(10);
    e = roll < 6 ? 0 : (roll < 8 ? 1 : 2);
  }
  return ev;
}

/// Random split points: a mix of tiny runs (1-3) and long ones, so runs
/// straddle every alignment of the stream.
std::vector<std::size_t> random_splits(std::uint64_t seed, std::size_t n) {
  Rng rng(seed);
  std::vector<std::size_t> lens;
  std::size_t consumed = 0;
  while (consumed < n) {
    std::size_t len = rng.uniform_below(2) == 0
                          ? 1 + rng.uniform_below(3)
                          : 1 + rng.uniform_below(200);
    len = std::min(len, n - consumed);
    lens.push_back(len);
    consumed += len;
  }
  return lens;
}

TimeWindowParams window_params() {
  TimeWindowParams p;
  p.m0 = 8;
  p.alpha = 2;
  p.k = 6;  // tiny windows: wrap pressure and deep chains come cheap
  p.num_windows = 4;
  p.num_ports = 2;
  return p;
}

QueueMonitorParams monitor_params() {
  QueueMonitorParams p;
  p.max_depth_cells = 2'600;
  p.granularity_cells = 64;
  p.num_ports = 2;
  return p;
}

std::vector<WindowState> all_window_banks(const TimeWindowSet& w,
                                          std::uint32_t ports) {
  std::vector<WindowState> out;
  for (std::uint32_t bank = 0; bank < 4; ++bank) {
    for (std::uint32_t port = 0; port < ports; ++port) {
      out.push_back(w.read_bank(bank, port));
    }
  }
  return out;
}

bool cells_equal(const WindowCell& a, const WindowCell& b) {
  return a.occupied == b.occupied &&
         (!a.occupied ||
          (a.flow == b.flow && a.cycle_id == b.cycle_id));
}

void expect_same_windows(const TimeWindowSet& a, const TimeWindowSet& b) {
  ASSERT_EQ(a.active_bank(), b.active_bank());
  ASSERT_EQ(a.rotation_epoch(), b.rotation_epoch());
  const auto sa = all_window_banks(a, 2);
  const auto sb = all_window_banks(b, 2);
  ASSERT_EQ(sa.size(), sb.size());
  for (std::size_t i = 0; i < sa.size(); ++i) {
    ASSERT_EQ(sa[i].size(), sb[i].size());
    for (std::size_t win = 0; win < sa[i].size(); ++win) {
      ASSERT_EQ(sa[i][win].size(), sb[i][win].size());
      for (std::size_t c = 0; c < sa[i][win].size(); ++c) {
        ASSERT_TRUE(cells_equal(sa[i][win][c], sb[i][win][c]))
            << "bank/port " << i << " window " << win << " cell " << c;
      }
    }
  }
  EXPECT_EQ(a.stats().stored, b.stats().stored);
  EXPECT_EQ(a.stats().passed, b.stats().passed);
  EXPECT_EQ(a.stats().dropped, b.stats().dropped);
}

void expect_same_monitor(const QueueMonitor& a, const QueueMonitor& b) {
  ASSERT_EQ(a.active_bank(), b.active_bank());
  for (std::uint32_t bank = 0; bank < 4; ++bank) {
    for (std::uint32_t part = 0; part < 2; ++part) {
      const auto ma = a.read_bank(bank, part);
      const auto mb = b.read_bank(bank, part);
      ASSERT_EQ(ma.top, mb.top) << "bank " << bank << " part " << part;
      ASSERT_EQ(ma.entries.size(), mb.entries.size());
      for (std::size_t i = 0; i < ma.entries.size(); ++i) {
        const auto& ea = ma.entries[i];
        const auto& eb = mb.entries[i];
        EXPECT_EQ(ea.inc.valid, eb.inc.valid);
        EXPECT_EQ(ea.dec.valid, eb.dec.valid);
        if (ea.inc.valid && eb.inc.valid) {
          EXPECT_EQ(ea.inc.flow, eb.inc.flow);
          EXPECT_EQ(ea.inc.seq, eb.inc.seq);
        }
        if (ea.dec.valid && eb.dec.valid) {
          EXPECT_EQ(ea.dec.flow, eb.dec.flow);
          EXPECT_EQ(ea.dec.seq, eb.dec.seq);
        }
      }
    }
  }
}

TEST(BatchBoundaryProperty, WindowsAnySplitMatchesScalar) {
  constexpr std::size_t kPackets = 6'000;
  for (const simd::Level level : sweep_levels()) {
  SCOPED_TRACE(simd::to_string(level));
  ScopedLevel scope(level);
  for (std::uint64_t trial = 0; trial < 8; ++trial) {
    const Stream s = random_stream(100 + trial, kPackets);
    const auto splits = random_splits(200 + trial, kPackets);
    const auto events = random_events(300 + trial, splits.size());

    TimeWindowSet scalar(window_params());
    TimeWindowSet batched(window_params());

    std::size_t off = 0;
    bool locked = false;
    for (std::size_t r = 0; r < splits.size(); ++r) {
      const std::size_t len = splits[r];
      const std::uint32_t port = static_cast<std::uint32_t>(r & 1);
      // Scalar oracle: one packet at a time.
      for (std::size_t i = off; i < off + len; ++i) {
        scalar.on_packet(port, s.flows[i], s.deq[i]);
      }
      // Batched: the whole run in one call.
      batched.absorb_run(port, s.flows.data() + off, s.deq.data() + off, len);
      off += len;
      // Rotation/freeze between runs only — the splitter's contract.
      if (events[r] == 1) {
        scalar.flip_periodic();
        batched.flip_periodic();
      } else if (events[r] == 2) {
        if (locked) {
          scalar.end_dataplane_query();
          batched.end_dataplane_query();
          locked = false;
        } else {
          ASSERT_EQ(scalar.begin_dataplane_query(),
                    batched.begin_dataplane_query());
          locked = true;
        }
      }
    }
    expect_same_windows(scalar, batched);
  }
  }
}

TEST(BatchBoundaryProperty, MonitorAnySplitMatchesScalar) {
  constexpr std::size_t kPackets = 6'000;
  for (const simd::Level level : sweep_levels()) {
  SCOPED_TRACE(simd::to_string(level));
  ScopedLevel scope(level);
  for (std::uint64_t trial = 0; trial < 8; ++trial) {
    const Stream s = random_stream(400 + trial, kPackets);
    const auto splits = random_splits(500 + trial, kPackets);
    const auto events = random_events(600 + trial, splits.size());

    QueueMonitor scalar(monitor_params());
    QueueMonitor batched(monitor_params());

    std::size_t off = 0;
    bool locked = false;
    for (std::size_t r = 0; r < splits.size(); ++r) {
      const std::size_t len = splits[r];
      const std::uint32_t port = static_cast<std::uint32_t>(r & 1);
      for (std::size_t i = off; i < off + len; ++i) {
        scalar.on_packet(port, s.flows[i], s.depth[i]);
      }
      batched.absorb_run(port, s.flows.data() + off, s.depth.data() + off,
                         len);
      off += len;
      if (events[r] == 1) {
        scalar.flip_periodic();
        batched.flip_periodic();
      } else if (events[r] == 2) {
        if (locked) {
          scalar.end_dataplane_query();
          batched.end_dataplane_query();
          locked = false;
        } else {
          ASSERT_EQ(scalar.begin_dataplane_query(),
                    batched.begin_dataplane_query());
          locked = true;
        }
      }
    }
    expect_same_monitor(scalar, batched);
  }
  }
}

/// The wrap32 configuration narrows per-window cycle arithmetic; the
/// batched pass loops must apply the same per-window masks the scalar
/// chain does, including across 32-bit timestamp wrap-around.
TEST(BatchBoundaryProperty, Wrap32SplitsMatchScalar) {
  TimeWindowParams p = window_params();
  p.wrap32 = true;
  constexpr std::size_t kPackets = 4'000;
  for (const simd::Level level : sweep_levels()) {
  SCOPED_TRACE(simd::to_string(level));
  ScopedLevel scope(level);
  for (std::uint64_t trial = 0; trial < 4; ++trial) {
    Rng rng(700 + trial);
    std::vector<FlowId> flows;
    std::vector<Timestamp> deq;
    // Start near the 32-bit boundary so the stream wraps mid-way.
    Timestamp t = 0xffff0000ull;
    for (std::size_t i = 0; i < kPackets; ++i) {
      t += rng.uniform_below(40'000);
      flows.push_back(make_flow(static_cast<std::uint32_t>(
          rng.uniform_below(19))));
      deq.push_back(t);
    }
    const auto splits = random_splits(800 + trial, kPackets);

    TimeWindowSet scalar(p);
    TimeWindowSet batched(p);
    std::size_t off = 0;
    for (const std::size_t len : splits) {
      for (std::size_t i = off; i < off + len; ++i) {
        scalar.on_packet(0, flows[i], deq[i]);
      }
      batched.absorb_run(0, flows.data() + off, deq.data() + off, len);
      off += len;
    }
    expect_same_windows(scalar, batched);
  }
  }
}

}  // namespace
}  // namespace pq::core
