// Tests for the stale-cell salvage extension and the ablation switches
// (passing rule off, identity coefficients).
#include <gtest/gtest.h>

#include "core/coefficients.h"
#include "core/time_windows.h"
#include "core/window_filter.h"

namespace pq::core {
namespace {

TimeWindowParams small_params() {
  TimeWindowParams p;
  p.m0 = 4;   // 16 ns cells
  p.alpha = 1;
  p.k = 4;    // 16 cells, window period 256 ns
  p.num_windows = 3;
  return p;
}

TEST(Salvage, CollectsStaleWindow0Cells) {
  TimeWindowSet tw(small_params());
  // A burst fills 8 cells, then one late sparse packet makes them stale.
  for (std::uint32_t i = 0; i < 8; ++i) {
    tw.on_packet(0, make_flow(100 + i), i * 16);
  }
  tw.on_packet(0, make_flow(200), 16 * 16 * 5);  // five periods later
  const auto state = tw.read_bank(tw.active_bank(), 0);

  const auto plain = filter_stale_cells(state, tw.layout());
  EXPECT_EQ(plain.windows[0].cells.size(), 1u);  // only the late packet
  EXPECT_TRUE(plain.window0_salvage.empty());

  const auto salvage = filter_stale_cells(state, tw.layout(), true);
  // 7 burst cells survive (one was evicted by the late packet... the late
  // packet landed at index 0, evicting flow 100).
  EXPECT_EQ(salvage.window0_salvage.size(), 7u);
}

TEST(Salvage, EstimateRecoversSparseAftermathExactly) {
  TimeWindowSet tw(small_params());
  for (std::uint32_t i = 0; i < 8; ++i) {
    tw.on_packet(0, make_flow(100 + i), i * 16);
  }
  tw.on_packet(0, make_flow(200), 16 * 16 * 5);
  const auto state = tw.read_bank(tw.active_bank(), 0);
  const auto coeffs = CoefficientTable::compute(1.0, 1, 3);

  // Query the burst span [16, 128): without salvage nothing survives the
  // filter; with salvage the 7 remaining packets are exact.
  const auto without = estimate_flow_counts(
      filter_stale_cells(state, tw.layout()), tw.layout(), coeffs, 16, 128);
  EXPECT_TRUE(without.empty());

  const auto with = estimate_flow_counts(
      filter_stale_cells(state, tw.layout(), true), tw.layout(), coeffs, 16,
      128);
  EXPECT_EQ(with.size(), 7u);
  for (const auto& [flow, n] : with) EXPECT_DOUBLE_EQ(n, 1.0);
}

TEST(Salvage, SkipsSpansCoveredByDeeperWindows) {
  // Hand-built view: a salvage cell whose span lies inside window 1's
  // valid coverage must not be double counted.
  const TtsLayout layout(small_params());
  FilteredWindows f;
  f.empty = false;
  f.windows.resize(3);
  f.windows[1].cells.push_back({make_flow(1), 2});  // valid deeper data
  f.windows[1].cover_lo = 0;
  f.windows[1].cover_hi = 512;
  f.window0_salvage.push_back({make_flow(2), 5});  // span [80, 96) in w0
  const auto coeffs = CoefficientTable::compute(1.0, 1, 3);
  const auto counts = estimate_flow_counts(f, layout, coeffs, 0, 512);
  EXPECT_FALSE(counts.contains(make_flow(2)));
}

TEST(Salvage, CountsWhenNoDeeperCoverage) {
  const TtsLayout layout(small_params());
  FilteredWindows f;
  f.empty = false;
  f.windows.resize(3);  // deeper windows empty
  f.window0_salvage.push_back({make_flow(2), 5});
  const auto coeffs = CoefficientTable::compute(1.0, 1, 3);
  const auto counts = estimate_flow_counts(f, layout, coeffs, 0, 512);
  ASSERT_TRUE(counts.contains(make_flow(2)));
  EXPECT_DOUBLE_EQ(counts.at(make_flow(2)), 1.0);
}

TEST(Ablation, DisablingPassingEmptiesDeepWindows) {
  TimeWindowParams p = small_params();
  p.ablate_passing = true;
  TimeWindowSet tw(p);
  // Continuous traffic that would normally populate windows 1 and 2.
  for (std::uint32_t i = 0; i < 500; ++i) {
    tw.on_packet(0, make_flow(i % 9), i * 16);
  }
  const auto state = tw.read_bank(tw.active_bank(), 0);
  int deep = 0;
  for (std::uint32_t w = 1; w < 3; ++w) {
    for (const auto& c : state[w]) deep += c.occupied;
  }
  EXPECT_EQ(deep, 0);
  EXPECT_EQ(tw.stats().passed[0], 0u);
  EXPECT_GT(tw.stats().dropped[0], 0u);
}

TEST(Ablation, IdentityCoefficientsAreAllOnes) {
  const auto t = CoefficientTable::identity(4);
  ASSERT_EQ(t.size(), 4u);
  for (std::uint32_t i = 0; i < 4; ++i) {
    EXPECT_DOUBLE_EQ(t.coefficient(i), 1.0);
  }
}

TEST(Ablation, IdentityCoefficientsUndercountDeepWindows) {
  // With recovery disabled, deep-window estimates shrink by the true
  // retention ratio — the effect the ablation bench quantifies.
  TimeWindowSet tw(small_params());
  for (std::uint32_t i = 0; i < 5000; ++i) {
    tw.on_packet(0, make_flow(1), i * 16);
  }
  const auto state = tw.read_bank(tw.active_bank(), 0);
  const auto f = filter_stale_cells(state, tw.layout());
  const auto& w2 = f.windows[2];
  const auto real = CoefficientTable::compute(1.0, 1, 3);
  const auto est = estimate_flow_counts(f, tw.layout(), real, w2.cover_lo,
                                        w2.cover_hi);
  const auto raw = estimate_flow_counts(f, tw.layout(),
                                        CoefficientTable::identity(3),
                                        w2.cover_lo, w2.cover_hi);
  ASSERT_TRUE(est.contains(make_flow(1)));
  EXPECT_GT(est.at(make_flow(1)), 1.5 * raw.at(make_flow(1)));
}

}  // namespace
}  // namespace pq::core
