// Statistical validation of Theorems 1-3: the per-window packet counts an
// actual TimeWindowSet retains must match the coefficient recovery model of
// Algorithm 2 when traffic satisfies Theorem 3's assumptions (near line
// rate, randomised cell entry).
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "core/coefficients.h"
#include "core/time_windows.h"
#include "core/window_filter.h"

namespace pq::core {
namespace {

struct TheoryCase {
  std::uint32_t alpha;
  double z0;
};

class TheoryTest : public ::testing::TestWithParam<TheoryCase> {};

TEST_P(TheoryTest, RetainedCountsMatchCoefficients) {
  const auto [alpha, z0] = GetParam();

  TimeWindowParams p;
  p.m0 = 6;
  p.alpha = alpha;
  p.k = 10;
  p.num_windows = 4;
  TimeWindowSet tw(p);
  const TtsLayout& layout = tw.layout();

  // Arrivals at mean gap d = 2^m0 / z0, shaped as the cell period plus an
  // exponential residue: never two packets per window-0 cell (Theorem 3's
  // line-rate assumption) while still randomising cell entry.
  const double d = 64.0 / z0;
  Rng rng(42 + alpha);
  double t = 0;
  std::uint32_t flow = 0;
  // Run long enough that the deepest window is in steady state.
  const double end = static_cast<double>(layout.set_period_ns()) * 3.0;
  while (t < end) {
    t += 64.0 + (d > 64.0 ? rng.exponential(d - 64.0) : 0.0);
    tw.on_packet(0, make_flow(flow++ % 4096), static_cast<Timestamp>(t));
  }

  const auto state = tw.read_bank(tw.active_bank(), 0);
  const auto filtered = filter_stale_cells(state, layout);
  ASSERT_FALSE(filtered.empty);
  const auto coeffs = CoefficientTable::compute(z0, alpha, p.num_windows);

  for (std::uint32_t i = 0; i < p.num_windows; ++i) {
    const double observed =
        static_cast<double>(filtered.windows[i].cells.size());
    // True packets dequeued during window i's coverage:
    const double span = static_cast<double>(filtered.windows[i].cover_hi -
                                            filtered.windows[i].cover_lo);
    const double truth = span / d;
    const double expected = truth * coeffs.coefficient(i);
    ASSERT_GT(expected, 30.0) << "window " << i << " undersampled";
    // Theorem 2 assumes i.i.d. cell occupancy across window periods; real
    // near-line-rate arrivals are a renewal sweep whose period-to-period
    // correlation grows as z drops (the residual error the paper's
    // Section 4.3 acknowledges). Deep windows at low z therefore get a
    // looser band; everything else must track the model closely.
    const double tol = (z0 >= 0.65 || i < 3) ? 0.25 : 0.85;
    EXPECT_NEAR(observed / expected, 1.0, tol)
        << "window " << i << " observed=" << observed
        << " expected=" << expected;
  }
}

INSTANTIATE_TEST_SUITE_P(
    ZAlphaSweep, TheoryTest,
    ::testing::Values(TheoryCase{1, 0.95}, TheoryCase{1, 0.7},
                      TheoryCase{1, 0.5}, TheoryCase{2, 0.95},
                      TheoryCase{2, 0.7}, TheoryCase{3, 0.9}),
    [](const ::testing::TestParamInfo<TheoryCase>& tpi) {
      // += rather than operator+ chains: GCC 12 -Wrestrict false positive.
      std::string n = "alpha";
      n += std::to_string(tpi.param.alpha);
      n += "_z";
      n += std::to_string(static_cast<int>(tpi.param.z0 * 100));
      return n;
    });

TEST(TheoryRecovery, PerFlowEstimateIsUnbiasedAcrossWindows) {
  // Two flows at a 3:1 packet ratio; after recovery the estimated ratio in
  // every window must stay close to 3:1 (the proportional property).
  TimeWindowParams p;
  p.m0 = 6;
  p.alpha = 1;
  p.k = 10;
  p.num_windows = 4;
  TimeWindowSet tw(p);
  const TtsLayout& layout = tw.layout();

  const double z0 = 0.9;
  const double d = 64.0 / z0;
  Rng rng(7);
  double t = 0;
  const double end = static_cast<double>(layout.set_period_ns()) * 3.0;
  while (t < end) {
    t += 64.0 + rng.exponential(d - 64.0);
    const FlowId flow = rng.chance(0.75) ? make_flow(1) : make_flow(2);
    tw.on_packet(0, flow, static_cast<Timestamp>(t));
  }

  const auto filtered =
      filter_stale_cells(tw.read_bank(tw.active_bank(), 0), layout);
  for (std::uint32_t i = 1; i < p.num_windows; ++i) {
    double f1 = 0, f2 = 0;
    for (const auto& c : filtered.windows[i].cells) {
      if (c.flow == make_flow(1)) ++f1;
      if (c.flow == make_flow(2)) ++f2;
    }
    ASSERT_GT(f2, 10.0) << "window " << i;
    EXPECT_NEAR(f1 / f2, 3.0, 1.0) << "window " << i;
  }
}

TEST(TheoryRecovery, HeavyFlowsSurviveDeepWindowsBetterThanMice) {
  // Section 7.1 (Fig. 12 discussion): because survival is probabilistic,
  // flows with more packets remain visible in deep windows while one-packet
  // mice vanish.
  TimeWindowParams p;
  p.m0 = 6;
  p.alpha = 2;
  p.k = 10;
  p.num_windows = 4;
  TimeWindowSet tw(p);
  Rng rng(11);
  double t = 0;
  std::uint32_t mouse = 1000;
  const double end = static_cast<double>(tw.layout().set_period_ns()) * 2.0;
  while (t < end) {
    t += 64.0 + rng.exponential(6.0);  // mean gap 70 ns
    // 60% of packets belong to one elephant; each mouse sends one packet.
    const FlowId flow =
        rng.chance(0.6) ? make_flow(0) : make_flow(++mouse);
    tw.on_packet(0, flow, static_cast<Timestamp>(t));
  }
  const auto filtered =
      filter_stale_cells(tw.read_bank(tw.active_bank(), 0), tw.layout());
  const auto& deepest = filtered.windows.back().cells;
  ASSERT_FALSE(deepest.empty());
  double elephant = 0;
  for (const auto& c : deepest) elephant += (c.flow == make_flow(0));
  EXPECT_GT(elephant / static_cast<double>(deepest.size()), 0.45);
}

}  // namespace
}  // namespace pq::core
