#include "core/window_filter.h"

#include <gtest/gtest.h>

#include "core/time_windows.h"

namespace pq::core {
namespace {

TimeWindowParams small_params() {
  TimeWindowParams p;
  p.m0 = 4;   // 16 ns cells
  p.alpha = 1;
  p.k = 4;    // 16 cells
  p.num_windows = 3;
  return p;
}

/// Sends one packet per cell period for `cells` consecutive periods,
/// starting at raw time `start`, each with a distinct flow id offset.
void fill_sequential(TimeWindowSet& tw, Timestamp start, std::uint32_t cells,
                     std::uint32_t flow_base) {
  for (std::uint32_t i = 0; i < cells; ++i) {
    tw.on_packet(0, make_flow(flow_base + i), start + i * 16);
  }
}

TEST(Filter, EmptyStateYieldsEmptyResult) {
  TimeWindowSet tw(small_params());
  const auto f = filter_stale_cells(tw.read_bank(tw.active_bank(), 0),
                                    tw.layout());
  EXPECT_TRUE(f.empty);
}

TEST(Filter, FreshWindowKeepsEverything) {
  TimeWindowSet tw(small_params());
  fill_sequential(tw, 0, 16, 100);
  const auto f = filter_stale_cells(tw.read_bank(tw.active_bank(), 0),
                                    tw.layout());
  ASSERT_FALSE(f.empty);
  EXPECT_EQ(f.windows[0].cells.size(), 16u);
}

TEST(Filter, RemovesCellsOlderThanOneWindowPeriod) {
  TimeWindowSet tw(small_params());
  // Fill 16 cells, skip 3 full window periods, then write 4 more cells.
  fill_sequential(tw, 0, 16, 100);
  const Timestamp late = 16 * 16 * 4;
  fill_sequential(tw, late, 4, 200);
  const auto f = filter_stale_cells(tw.read_bank(tw.active_bank(), 0),
                                    tw.layout());
  // Only the 4 fresh cells survive in window 0: the old ones are multiple
  // cycles behind the latest cell.
  ASSERT_EQ(f.windows[0].cells.size(), 4u);
  for (const auto& c : f.windows[0].cells) {
    EXPECT_GE(c.flow.src_port, make_flow(200).src_port);
  }
}

TEST(Filter, KeepsPreviousCycleCellsAboveLatestIndex) {
  TimeWindowSet tw(small_params());
  // Write cells 8..15 of cycle 0, then cells 0..3 of cycle 1: all 12 are
  // within one window period of the latest cell.
  fill_sequential(tw, 8 * 16, 8, 100);   // indices 8..15, cycle 0
  fill_sequential(tw, 16 * 16, 4, 200);  // indices 0..3, cycle 1
  const auto f = filter_stale_cells(tw.read_bank(tw.active_bank(), 0),
                                    tw.layout());
  EXPECT_EQ(f.windows[0].cells.size(), 12u);
}

TEST(Filter, CoverageTilesBackwardsInTime) {
  TimeWindowSet tw(small_params());
  // More than a full set period of continuous traffic, so every window's
  // coverage lies entirely after t = 0 (no clamping).
  fill_sequential(tw, 0, 16 * 10, 100);
  const auto f = filter_stale_cells(tw.read_bank(tw.active_bank(), 0),
                                    tw.layout());
  const auto& layout = tw.layout();
  for (std::uint32_t i = 0; i < 3; ++i) {
    EXPECT_EQ(f.windows[i].cover_hi - f.windows[i].cover_lo,
              layout.window_period_ns(i))
        << "window " << i;
    if (i > 0) {
      // Window i ends no later than where window i-1 begins (tiling,
      // allowing for the alpha-shift rounding).
      EXPECT_LE(f.windows[i].cover_hi, f.windows[i - 1].cover_lo +
                                           layout.cell_period_ns(i));
    }
  }
}

TEST(Estimate, ExactInWindow0ForSparseTraffic) {
  TimeWindowSet tw(small_params());
  fill_sequential(tw, 0, 10, 100);  // 10 packets, distinct flows and cells
  const auto f = filter_stale_cells(tw.read_bank(tw.active_bank(), 0),
                                    tw.layout());
  const auto coeffs = CoefficientTable::compute(1.0, 1, 3);
  const auto counts =
      estimate_flow_counts(f, tw.layout(), coeffs, 0, 10 * 16);
  EXPECT_EQ(counts.size(), 10u);
  for (const auto& [flow, n] : counts) EXPECT_DOUBLE_EQ(n, 1.0);
}

TEST(Estimate, IntervalSelectsOnlyOverlappingCells) {
  TimeWindowSet tw(small_params());
  fill_sequential(tw, 0, 10, 100);
  const auto f = filter_stale_cells(tw.read_bank(tw.active_bank(), 0),
                                    tw.layout());
  const auto coeffs = CoefficientTable::compute(1.0, 1, 3);
  // Query only cell periods 3..6 (raw time [48, 112)).
  const auto counts = estimate_flow_counts(f, tw.layout(), coeffs, 48, 112);
  EXPECT_EQ(counts.size(), 4u);
  EXPECT_TRUE(counts.contains(make_flow(103)));
  EXPECT_TRUE(counts.contains(make_flow(106)));
  EXPECT_FALSE(counts.contains(make_flow(102)));
  EXPECT_FALSE(counts.contains(make_flow(107)));
}

TEST(Estimate, ProratesPartialCellOverlap) {
  TimeWindowSet tw(small_params());
  fill_sequential(tw, 0, 10, 100);
  const auto f = filter_stale_cells(tw.read_bank(tw.active_bank(), 0),
                                    tw.layout());
  const auto coeffs = CoefficientTable::compute(1.0, 1, 3);
  // Query half of cell period 5: raw time [80, 88).
  const auto counts = estimate_flow_counts(f, tw.layout(), coeffs, 80, 88);
  ASSERT_EQ(counts.size(), 1u);
  EXPECT_DOUBLE_EQ(counts.at(make_flow(105)), 0.5);
}

TEST(Estimate, AppliesCoefficientRecoveryInDeepWindows) {
  // Hand-build a filtered view with one cell in window 1 and check that the
  // estimate is scaled by 1/coefficient[1].
  const TtsLayout layout(small_params());
  FilteredWindows f;
  f.empty = false;
  f.windows.resize(3);
  // Window 1 cell with TTS 2 covers raw [2*32, 3*32) = [64, 96).
  f.windows[1].cells.push_back({make_flow(1), 2});
  f.windows[1].cover_lo = 0;
  f.windows[1].cover_hi = 512;
  const auto coeffs = CoefficientTable::compute(0.8, 1, 3);
  const auto counts = estimate_flow_counts(f, layout, coeffs, 64, 96);
  ASSERT_EQ(counts.size(), 1u);
  // 1/coefficient recovery, bounded by the piece's physical budget of one
  // packet per window-0 cell period (32 ns / 16 ns = 2 here, above the
  // raw 1.84 -> no clipping).
  EXPECT_NEAR(counts.at(make_flow(1)), 1.0 / coeffs.coefficient(1), 1e-9);
}

TEST(Estimate, WindowPiecesAreDisjoint) {
  // A cell whose span lies outside its window's coverage contributes
  // nothing (prevents double counting across windows).
  const TtsLayout layout(small_params());
  FilteredWindows f;
  f.empty = false;
  f.windows.resize(3);
  f.windows[1].cells.push_back({make_flow(1), 2});  // raw [64, 96)
  f.windows[1].cover_lo = 128;  // coverage excludes the cell span
  f.windows[1].cover_hi = 640;
  const auto coeffs = CoefficientTable::compute(0.8, 1, 3);
  EXPECT_TRUE(estimate_flow_counts(f, layout, coeffs, 0, 1000).empty());
}

TEST(Estimate, EmptyOrInvertedIntervalYieldsNothing) {
  TimeWindowSet tw(small_params());
  fill_sequential(tw, 0, 10, 100);
  const auto f = filter_stale_cells(tw.read_bank(tw.active_bank(), 0),
                                    tw.layout());
  const auto coeffs = CoefficientTable::compute(1.0, 1, 3);
  EXPECT_TRUE(estimate_flow_counts(f, tw.layout(), coeffs, 50, 50).empty());
  EXPECT_TRUE(estimate_flow_counts(f, tw.layout(), coeffs, 60, 50).empty());
}

TEST(Estimate, PieceBudgetStopsMisconfiguredBlowup) {
  // Misconfigured m0 (tiny z0): raw recovery would multiply each observed
  // cell by millions; the per-piece budget bounds the total to what the
  // measured packet rate can physically deliver in the interval.
  const TtsLayout layout(small_params());
  FilteredWindows f;
  f.empty = false;
  f.windows.resize(3);
  f.windows[2].cells.push_back({make_flow(1), 1});  // w2 span [64, 128)
  f.windows[2].cover_lo = 0;
  f.windows[2].cover_hi = 1024;
  const auto coeffs = CoefficientTable::compute(1e-3, 1, 3);
  ASSERT_GT(1.0 / coeffs.coefficient(2), 1e5);
  const auto counts = estimate_flow_counts(f, layout, coeffs, 0, 1024);
  // Budget: at most one packet per 16 ns cell period -> 64 packets.
  EXPECT_NEAR(counts.at(make_flow(1)), 1024.0 / 16.0, 1e-9);
}

TEST(Estimate, BudgetPreservesPerFlowShares) {
  const TtsLayout layout(small_params());
  FilteredWindows f;
  f.empty = false;
  f.windows.resize(3);
  // Three cells of flow A, one of flow B in window 1.
  f.windows[1].cells.push_back({make_flow(1), 2});
  f.windows[1].cells.push_back({make_flow(1), 3});
  f.windows[1].cells.push_back({make_flow(1), 4});
  f.windows[1].cells.push_back({make_flow(2), 5});
  f.windows[1].cover_lo = 0;
  f.windows[1].cover_hi = 512;
  const auto coeffs = CoefficientTable::compute(0.05, 1, 3);  // forces clamp
  const auto counts = estimate_flow_counts(f, layout, coeffs, 0, 512);
  ASSERT_EQ(counts.size(), 2u);
  EXPECT_NEAR(counts.at(make_flow(1)) / counts.at(make_flow(2)), 3.0, 1e-9);
}

TEST(MergeCounts, SumsPerFlow) {
  FlowCounts a{{make_flow(1), 2.0}, {make_flow(2), 1.0}};
  const FlowCounts b{{make_flow(1), 3.0}, {make_flow(3), 4.0}};
  merge_counts(a, b);
  EXPECT_DOUBLE_EQ(a.at(make_flow(1)), 5.0);
  EXPECT_DOUBLE_EQ(a.at(make_flow(2)), 1.0);
  EXPECT_DOUBLE_EQ(a.at(make_flow(3)), 4.0);
}

TEST(TopK, OrdersByCountThenFlow) {
  FlowCounts c{{make_flow(1), 5.0},
               {make_flow(2), 9.0},
               {make_flow(3), 5.0},
               {make_flow(4), 1.0}};
  const auto top = top_k_flows(c, 3);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0].first, make_flow(2));
  EXPECT_DOUBLE_EQ(top[1].second, 5.0);
  EXPECT_DOUBLE_EQ(top[2].second, 5.0);
  EXPECT_LT(top[1].first, top[2].first);  // deterministic tie-break
}

TEST(TopK, KLargerThanSizeReturnsAll) {
  FlowCounts c{{make_flow(1), 1.0}};
  EXPECT_EQ(top_k_flows(c, 10).size(), 1u);
}

}  // namespace
}  // namespace pq::core
