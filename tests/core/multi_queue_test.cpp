// Multi-queue tracking (paper Section 5: "multiple queues are tracked
// individually" / "the queue monitor can track each priority or rank
// separately"): per-class depth accounting in the simulator and per-queue
// monitor partitions in the pipeline, behind a strict-priority scheduler.
#include <gtest/gtest.h>

#include "control/analysis_program.h"
#include "core/pipeline.h"
#include "sim/egress_port.h"

namespace pq::core {
namespace {

Packet pkt(std::uint32_t flow, Timestamp t, std::uint8_t prio,
           std::uint32_t bytes = 800) {
  static std::uint64_t next_id = 1;
  Packet p;
  p.flow = make_flow(flow);
  p.size_bytes = bytes;
  p.arrival_ns = t;
  p.priority = prio;
  p.id = next_id++;
  return p;
}

PipelineConfig mq_config(std::uint8_t queues) {
  PipelineConfig cfg;
  cfg.windows.m0 = 6;
  cfg.windows.alpha = 1;
  cfg.windows.k = 8;
  cfg.windows.num_windows = 3;
  cfg.monitor.max_depth_cells = 1000;
  cfg.queues_per_port = queues;
  return cfg;
}

TEST(MultiQueue, RejectsZeroQueues) {
  PipelineConfig cfg = mq_config(0);
  EXPECT_THROW(PrintQueuePipeline{cfg}, std::invalid_argument);
}

TEST(MultiQueue, SimulatorTracksPerClassDepth) {
  sim::PortConfig pc;
  pc.scheduler = sim::SchedulerKind::kStrictPriority;
  pc.num_classes = 2;
  sim::EgressPort port(pc);

  struct Probe : sim::EgressHook {
    std::vector<sim::EgressContext> ctxs;
    void on_egress(const sim::EgressContext& ctx) override {
      ctxs.push_back(ctx);
    }
  } probe;
  port.add_hook(&probe);

  // One high-priority packet (goes straight through), then a backlog of
  // low-priority packets, then a second high-priority packet: the latter
  // must observe a deep *port* queue but an empty *class-0* queue.
  std::vector<Packet> pkts;
  pkts.push_back(pkt(1, 0, 0));
  for (int i = 0; i < 10; ++i) pkts.push_back(pkt(2, 10, 1));
  pkts.push_back(pkt(3, 20, 0));
  port.run(std::move(pkts));

  const sim::EgressContext* high = nullptr;
  for (const auto& c : probe.ctxs) {
    if (c.flow == make_flow(3)) high = &c;
  }
  ASSERT_NE(high, nullptr);
  EXPECT_EQ(high->queue_id, 0);
  EXPECT_GT(high->enq_qdepth, 50u);       // port-level backlog
  EXPECT_EQ(high->enq_queue_qdepth, 0u);  // own class empty
}

TEST(MultiQueue, MonitorPartitionsPerQueue) {
  PrintQueuePipeline pipe(mq_config(2));
  const auto prefix = pipe.enable_port(0);

  sim::EgressContext ctx;
  ctx.egress_port = 0;
  ctx.packet_cells = 1;
  ctx.flow = make_flow(1);
  ctx.queue_id = 0;
  ctx.enq_queue_qdepth = 9;
  ctx.enq_timestamp = 100;
  pipe.on_egress(ctx);
  ctx.flow = make_flow(2);
  ctx.queue_id = 1;
  ctx.enq_queue_qdepth = 49;
  ctx.enq_timestamp = 200;
  pipe.on_egress(ctx);

  const auto part0 = pipe.monitor_partition(prefix, 0);
  const auto part1 = pipe.monitor_partition(prefix, 1);
  EXPECT_NE(part0, part1);
  const auto s0 = pipe.monitor().read_bank(pipe.monitor().active_bank(),
                                           part0);
  const auto s1 = pipe.monitor().read_bank(pipe.monitor().active_bank(),
                                           part1);
  EXPECT_EQ(s0.top, 10u);
  EXPECT_TRUE(s0.entries[10].inc.valid);
  EXPECT_EQ(s0.entries[10].inc.flow, make_flow(1));
  EXPECT_EQ(s1.top, 50u);
  EXPECT_EQ(s1.entries[50].inc.flow, make_flow(2));
}

TEST(MultiQueue, OutOfRangeQueueClampsToLast) {
  PrintQueuePipeline pipe(mq_config(2));
  const auto prefix = pipe.enable_port(0);
  EXPECT_EQ(pipe.monitor_partition(prefix, 7),
            pipe.monitor_partition(prefix, 1));
}

TEST(MultiQueue, PartitionBudgetAccountsQueues) {
  // 2 window partitions but 2 queues each: monitor needs 4 partitions;
  // with num_ports=2 in the monitor config that rounds to 4 -- both ports
  // enable fine; a third window partition does not exist anyway.
  PipelineConfig cfg = mq_config(2);
  cfg.windows.num_ports = 2;
  cfg.monitor.num_ports = 2;
  PrintQueuePipeline pipe(cfg);
  EXPECT_NO_THROW(pipe.enable_port(0));
  EXPECT_NO_THROW(pipe.enable_port(1));
  EXPECT_THROW(pipe.enable_port(2), std::length_error);
}

TEST(MultiQueue, EndToEndPriorityIsolation) {
  // Strict priority: class 1 has a standing backlog, class 0 stays empty.
  // The per-queue monitors must implicate different flows at different
  // levels, while a single-port monitor would blur them together.
  PipelineConfig cfg = mq_config(2);
  PrintQueuePipeline pipe(cfg);
  const auto prefix = pipe.enable_port(0);
  control::AnalysisProgram analysis(pipe, {});

  sim::PortConfig pc;
  pc.scheduler = sim::SchedulerKind::kStrictPriority;
  pc.num_classes = 2;
  sim::EgressPort port(pc);
  port.add_hook(&pipe);

  std::vector<Packet> pkts;
  // Saturating low-priority stream from flow 7.
  for (int i = 0; i < 200; ++i) {
    pkts.push_back(pkt(7, static_cast<Timestamp>(i) * 500, 1));
  }
  // Occasional high-priority packets from flow 8.
  for (int i = 0; i < 10; ++i) {
    pkts.push_back(pkt(8, 1000 + static_cast<Timestamp>(i) * 9000, 0));
  }
  port.run(std::move(pkts));
  analysis.finalize(port.stats().last_departure + 1);

  const auto low = analysis.query_queue_monitor(
      pipe.monitor_partition(prefix, 1), port.stats().last_departure);
  bool low_has_7 = false;
  for (const auto& c : low) low_has_7 |= (c.flow == make_flow(7));
  EXPECT_TRUE(low_has_7);
  for (const auto& c : low) EXPECT_NE(c.flow, make_flow(8));
}

}  // namespace
}  // namespace pq::core
