#include "core/time_windows.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace pq::core {
namespace {

TimeWindowParams small_params() {
  TimeWindowParams p;
  p.m0 = 4;
  p.alpha = 1;
  p.k = 4;
  p.num_windows = 3;
  return p;
}

TEST(TimeWindows, PortCountRoundsUpToPowerOfTwo) {
  TimeWindowParams p = small_params();
  p.num_ports = 5;
  TimeWindowSet tw(p);
  EXPECT_EQ(tw.port_partitions(), 8u);
  p.num_ports = 1;
  EXPECT_EQ(TimeWindowSet(p).port_partitions(), 1u);
  p.num_ports = 8;
  EXPECT_EQ(TimeWindowSet(p).port_partitions(), 8u);
}

TEST(TimeWindows, PortPartitionsAreIsolated) {
  TimeWindowParams p = small_params();
  p.num_ports = 2;
  TimeWindowSet tw(p);
  tw.on_packet(0, make_flow(1), 0x100);
  tw.on_packet(1, make_flow(2), 0x100);
  const auto s0 = tw.read_bank(tw.active_bank(), 0);
  const auto s1 = tw.read_bank(tw.active_bank(), 1);
  int occ0 = 0, occ1 = 0;
  for (const auto& c : s0[0]) occ0 += c.occupied;
  for (const auto& c : s1[0]) occ1 += c.occupied;
  EXPECT_EQ(occ0, 1);
  EXPECT_EQ(occ1, 1);
  // The same timestamp maps to the same index, but different flows prove
  // isolation.
  const std::uint64_t idx = (0x100 >> 4) & 0xf;
  EXPECT_EQ(s0[0][idx].flow, make_flow(1));
  EXPECT_EQ(s1[0][idx].flow, make_flow(2));
}

TEST(TimeWindows, PeriodicFlipSwitchesBankAndPreservesFrozenData) {
  TimeWindowSet tw(small_params());
  tw.on_packet(0, make_flow(7), 0x50);
  const std::uint32_t before = tw.active_bank();
  const std::uint32_t frozen = tw.flip_periodic();
  EXPECT_EQ(frozen, before);
  EXPECT_NE(tw.active_bank(), before);
  // New packets land in the new bank; the frozen bank is untouched.
  tw.on_packet(0, make_flow(8), 0x60);
  const auto frozen_state = tw.read_bank(frozen, 0);
  int occ = 0;
  for (const auto& c : frozen_state[0]) occ += c.occupied;
  EXPECT_EQ(occ, 1);
}

TEST(TimeWindows, FlipTwiceReturnsToOriginalBank) {
  TimeWindowSet tw(small_params());
  const std::uint32_t b0 = tw.active_bank();
  tw.flip_periodic();
  tw.flip_periodic();
  EXPECT_EQ(tw.active_bank(), b0);
}

TEST(TimeWindows, DataPlaneQueryFreezesAndLocks) {
  TimeWindowSet tw(small_params());
  tw.on_packet(0, make_flow(1), 0x10);
  const std::uint32_t before = tw.active_bank();
  const int special = tw.begin_dataplane_query();
  ASSERT_GE(special, 0);
  EXPECT_EQ(static_cast<std::uint32_t>(special), before);
  EXPECT_TRUE(tw.dataplane_query_locked());
  EXPECT_NE(tw.active_bank(), before);
  // A second query while locked is refused (paper Section 6.2).
  EXPECT_EQ(tw.begin_dataplane_query(), -1);
  tw.end_dataplane_query();
  EXPECT_FALSE(tw.dataplane_query_locked());
  EXPECT_GE(tw.begin_dataplane_query(), 0);
}

TEST(TimeWindows, PeriodicFlipsStayWithinDqGroup) {
  // While a data-plane query holds one register pair, periodic updates flip
  // between the two unused sets (paper Section 6.2).
  TimeWindowSet tw(small_params());
  const int special = tw.begin_dataplane_query();
  ASSERT_GE(special, 0);
  const std::uint32_t f1 = tw.flip_periodic();
  const std::uint32_t f2 = tw.flip_periodic();
  EXPECT_NE(f1, static_cast<std::uint32_t>(special));
  EXPECT_NE(f2, static_cast<std::uint32_t>(special));
  EXPECT_NE(f1, f2);
}

TEST(TimeWindows, StatsCountStoresPassesAndDrops) {
  TimeWindowSet tw(small_params());
  // Two packets in consecutive cycles, same index: one pass.
  tw.on_packet(0, make_flow(1), 0x000);
  tw.on_packet(0, make_flow(2), 0x100);  // TTS 0x10: same idx 0, next cycle
  EXPECT_EQ(tw.stats().stored[0], 2u);
  EXPECT_EQ(tw.stats().passed[0], 1u);
  EXPECT_EQ(tw.stats().stored[1], 1u);
  // A third packet two cycles later drops the previous occupant.
  tw.on_packet(0, make_flow(3), 0x400);
  EXPECT_EQ(tw.stats().dropped[0], 1u);
}

TEST(TimeWindows, SramBytesMatchesLayout) {
  TimeWindowParams p = small_params();  // k=4 -> 16 cells, T=3
  TimeWindowSet tw(p);
  EXPECT_EQ(tw.sram_bytes(), 4u * 3 * 16 * 16);
  p.num_ports = 4;
  EXPECT_EQ(TimeWindowSet(p).sram_bytes(), 4u * 3 * 16 * 4 * 16);
}

TEST(TimeWindows, Window0IsExactForSparseTraffic) {
  // With at most one packet per cell period and fewer packets than cells,
  // window 0 retains every packet.
  TimeWindowParams p;
  p.m0 = 6;
  p.alpha = 1;
  p.k = 8;
  p.num_windows = 2;
  TimeWindowSet tw(p);
  for (std::uint32_t i = 0; i < 200; ++i) {
    tw.on_packet(0, make_flow(i), static_cast<Timestamp>(i) * 64);
  }
  const auto state = tw.read_bank(tw.active_bank(), 0);
  int occ = 0;
  for (const auto& c : state[0]) occ += c.occupied;
  EXPECT_EQ(occ, 200);
  EXPECT_EQ(tw.stats().dropped[0], 0u);
}

TEST(TimeWindows, Wrap32MatchesUnwrappedBelowWrapPoint) {
  TimeWindowParams p = small_params();
  TimeWindowSet plain(p);
  p.wrap32 = true;
  TimeWindowSet wrapped(p);
  Rng rng(3);
  Timestamp t = 0;
  for (int i = 0; i < 5000; ++i) {
    t += rng.uniform_below(64);
    plain.on_packet(0, make_flow(static_cast<std::uint32_t>(i % 17)), t);
    wrapped.on_packet(0, make_flow(static_cast<std::uint32_t>(i % 17)), t);
  }
  const auto a = plain.read_bank(plain.active_bank(), 0);
  const auto b = wrapped.read_bank(wrapped.active_bank(), 0);
  for (std::uint32_t w = 0; w < p.num_windows; ++w) {
    for (std::uint64_t j = 0; j < a[w].size(); ++j) {
      EXPECT_EQ(a[w][j].occupied, b[w][j].occupied);
      if (a[w][j].occupied) {
        EXPECT_EQ(a[w][j].flow, b[w][j].flow);
        EXPECT_EQ(a[w][j].cycle_id, b[w][j].cycle_id);
      }
    }
  }
}

TEST(TimeWindows, Wrap32PassesAcrossTheWrapBoundary) {
  // Two packets whose timestamps straddle the 32-bit wrap and whose wrapped
  // cycle IDs differ by exactly one must still trigger a pass.
  TimeWindowParams p;
  p.m0 = 4;
  p.alpha = 1;
  p.k = 4;
  p.num_windows = 2;
  p.wrap32 = true;
  TimeWindowSet tw(p);
  // Last cell period before the wrap: raw ts 0xFFFFFFF0 (TTS 0x0FFFFFFF).
  tw.on_packet(0, make_flow(1), 0xFFFFFF00ull);
  // Just after the wrap: raw ts 2^32 + 0x00 maps to TTS 0, whose cycle is
  // one more than the previous modulo the cycle width.
  tw.on_packet(0, make_flow(2), 0x100000000ull);
  EXPECT_EQ(tw.stats().passed[0], 1u);
}

TEST(TimeWindows, DeepWindowsReceiveOnlyAgedTraffic) {
  // Continuous traffic: deeper windows hold strictly older cycles.
  TimeWindowParams p = small_params();
  TimeWindowSet tw(p);
  Rng rng(9);
  Timestamp t = 0;
  for (int i = 0; i < 20000; ++i) {
    t += 8 + rng.uniform_below(16);
    tw.on_packet(0, make_flow(static_cast<std::uint32_t>(i % 31)), t);
  }
  const auto state = tw.read_bank(tw.active_bank(), 0);
  const TtsLayout& layout = tw.layout();
  // Max TTS per window, expressed in raw time, must not increase with depth.
  Timestamp prev_hi = ~0ull;
  for (std::uint32_t w = 0; w < p.num_windows; ++w) {
    Timestamp hi = 0;
    for (std::uint64_t j = 0; j < state[w].size(); ++j) {
      if (!state[w][j].occupied) continue;
      hi = std::max(hi,
                    layout.cell_span(w, (state[w][j].cycle_id << p.k) | j).hi);
    }
    if (hi != 0) {
      EXPECT_LE(hi, prev_hi) << "window " << w;
      prev_hi = hi;
    }
  }
}

}  // namespace
}  // namespace pq::core
