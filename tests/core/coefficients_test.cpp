#include "core/coefficients.h"

#include <gtest/gtest.h>

#include <cmath>

namespace pq::core {
namespace {

TEST(Coefficients, Window0IsAlwaysExact) {
  for (double z : {0.1, 0.5, 0.9, 1.0}) {
    const auto t = CoefficientTable::compute(z, 1, 4);
    EXPECT_DOUBLE_EQ(t.coefficient(0), 1.0);
    EXPECT_DOUBLE_EQ(t.z(0), z);
  }
}

TEST(Coefficients, HandComputedAlphaOne) {
  // z = 0.8, alpha = 1: p = 1 - z^2 = 0.36;
  // ratio_1 = z * (1 - p^2)/(1 - p)/2 = z * (1 + p)/2 = 0.544.
  const auto t = CoefficientTable::compute(0.8, 1, 3);
  EXPECT_NEAR(t.coefficient(1), 0.544, 1e-12);
  EXPECT_NEAR(t.z(1), 1 - 0.36 * 0.36, 1e-12);
  // Window 2 applies the same recurrence to the propagated z.
  const double z1 = 1 - 0.36 * 0.36;
  const double p1 = 1 - z1 * z1;
  const double ratio2 = z1 * (1 + p1) / 2;
  EXPECT_NEAR(t.coefficient(2), 0.544 * ratio2, 1e-12);
}

TEST(Coefficients, HandComputedAlphaTwo) {
  // alpha = 2: ratio = z * (1 - p^4) / (1 - p) / 4.
  const double z = 0.6;
  const double p = 1 - z * z;
  const double ratio = z * (1 - std::pow(p, 4)) / (1 - p) / 4;
  const auto t = CoefficientTable::compute(z, 2, 2);
  EXPECT_NEAR(t.coefficient(1), ratio, 1e-12);
  EXPECT_NEAR(t.z(1), 1 - std::pow(p, 4), 1e-12);
}

TEST(Coefficients, MonotonicallyDecreasingWithDepth) {
  const auto t = CoefficientTable::compute(0.7, 2, 6);
  for (std::uint32_t i = 1; i < t.size(); ++i) {
    EXPECT_LT(t.coefficient(i), t.coefficient(i - 1)) << "window " << i;
    EXPECT_GT(t.coefficient(i), 0.0);
  }
}

TEST(Coefficients, LargerAlphaCompressesMore) {
  const auto a1 = CoefficientTable::compute(0.8, 1, 4);
  const auto a2 = CoefficientTable::compute(0.8, 2, 4);
  const auto a3 = CoefficientTable::compute(0.8, 3, 4);
  EXPECT_GT(a1.coefficient(3), a2.coefficient(3));
  EXPECT_GT(a2.coefficient(3), a3.coefficient(3));
}

TEST(Coefficients, FullOccupancyKeepsHalfPerWindowAtAlphaOne) {
  // z = 1: p = 0, ratio = 1/2 exactly — each deeper window keeps half.
  const auto t = CoefficientTable::compute(1.0, 1, 5);
  for (std::uint32_t i = 0; i < 5; ++i) {
    EXPECT_NEAR(t.coefficient(i), std::pow(0.5, i), 1e-12);
  }
}

TEST(Coefficients, TinyZYieldsVanishingCoefficients) {
  // As z -> 0, ratio -> z * (1 + p)/2 ~ z; the geometric-sum evaluation
  // must not collapse to zero (numerical stability near p = 1).
  const auto t = CoefficientTable::compute(1e-6, 1, 3);
  EXPECT_GT(t.coefficient(1), 0.0);
  EXPECT_NEAR(t.coefficient(1), 1e-6, 2e-8);
  EXPECT_LT(t.coefficient(2), t.coefficient(1));
  EXPECT_GT(t.coefficient(2), 0.0);
}

TEST(Coefficients, ClampsZAboveOne) {
  const auto clamped = CoefficientTable::compute(5.0, 1, 3);
  const auto one = CoefficientTable::compute(1.0, 1, 3);
  EXPECT_DOUBLE_EQ(clamped.coefficient(2), one.coefficient(2));
}

TEST(Coefficients, RejectsBadParams) {
  EXPECT_THROW(CoefficientTable::compute(0.5, 0, 3), std::invalid_argument);
  EXPECT_THROW(CoefficientTable::compute(0.5, 1, 0), std::invalid_argument);
}

TEST(Z0FromInterarrival, MatchesPaperConfigurations) {
  // UW: m0 = 6 (64 ns) with 110 ns average packet interval -> z ~ 0.58.
  EXPECT_NEAR(z0_from_interarrival(6, 110.0), 64.0 / 110.0, 1e-12);
  // WS/DM: m0 = 10 (1024 ns) with 1200 ns interval -> z ~ 0.85.
  EXPECT_NEAR(z0_from_interarrival(10, 1200.0), 1024.0 / 1200.0, 1e-12);
}

TEST(Z0FromInterarrival, ClampsToOne) {
  EXPECT_DOUBLE_EQ(z0_from_interarrival(10, 10.0), 1.0);
}

TEST(Z0FromInterarrival, RejectsNonPositiveD) {
  EXPECT_THROW(z0_from_interarrival(6, 0.0), std::invalid_argument);
}

TEST(ServiceTime, MatchesLineRate) {
  // 1500 B at 10 Gb/s = 1200 ns; 100 B at 10 Gb/s = 80 ns.
  EXPECT_DOUBLE_EQ(service_time_ns(1500, 10.0), 1200.0);
  EXPECT_DOUBLE_EQ(service_time_ns(100, 10.0), 80.0);
  EXPECT_THROW(service_time_ns(0, 10.0), std::invalid_argument);
}

}  // namespace
}  // namespace pq::core
