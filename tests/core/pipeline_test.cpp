#include "core/pipeline.h"

#include <gtest/gtest.h>

namespace pq::core {
namespace {

PipelineConfig small_config() {
  PipelineConfig cfg;
  cfg.windows.m0 = 4;
  cfg.windows.alpha = 1;
  cfg.windows.k = 4;
  cfg.windows.num_windows = 2;
  cfg.windows.num_ports = 2;
  cfg.monitor.max_depth_cells = 100;
  cfg.monitor.num_ports = 2;
  return cfg;
}

sim::EgressContext ctx(std::uint32_t port, std::uint32_t flow, Timestamp enq,
                       Duration delta, std::uint32_t qdepth = 0) {
  sim::EgressContext c;
  c.flow = make_flow(flow);
  c.egress_port = port;
  c.size_bytes = 80;
  c.packet_cells = 1;
  c.enq_qdepth = qdepth;
  c.enq_timestamp = enq;
  c.deq_timedelta = delta;
  return c;
}

struct RecordingObserver : PipelineObserver {
  std::vector<Timestamp> times;
  std::vector<DqNotification> triggers;
  void on_time(Timestamp now) override { times.push_back(now); }
  void on_dq_trigger(const DqNotification& n) override {
    triggers.push_back(n);
  }
};

TEST(Pipeline, PortTableGatesPackets) {
  PrintQueuePipeline pipe(small_config());
  pipe.enable_port(7);
  pipe.on_egress(ctx(7, 1, 0, 10));
  pipe.on_egress(ctx(8, 2, 0, 10));  // not enabled: ignored
  EXPECT_EQ(pipe.packets_seen(), 1u);
  EXPECT_TRUE(pipe.port_prefix(7).has_value());
  EXPECT_FALSE(pipe.port_prefix(8).has_value());
}

TEST(Pipeline, EnablePortIsIdempotent) {
  PrintQueuePipeline pipe(small_config());
  const auto a = pipe.enable_port(3);
  const auto b = pipe.enable_port(3);
  EXPECT_EQ(a, b);
}

TEST(Pipeline, EnablePortExhaustsPartitions) {
  PrintQueuePipeline pipe(small_config());  // 2 partitions
  pipe.enable_port(1);
  pipe.enable_port(2);
  EXPECT_THROW(pipe.enable_port(3), std::length_error);
}

TEST(Pipeline, PacketsReachWindowsAndMonitor) {
  PrintQueuePipeline pipe(small_config());
  const auto prefix = pipe.enable_port(0);
  pipe.on_egress(ctx(0, 1, 100, 20, 5));
  const auto wstate = pipe.windows().read_bank(pipe.windows().active_bank(),
                                               prefix);
  int occ = 0;
  for (const auto& c : wstate[0]) occ += c.occupied;
  EXPECT_EQ(occ, 1);
  const auto mstate =
      pipe.monitor().read_bank(pipe.monitor().active_bank(), prefix);
  EXPECT_EQ(mstate.top, 6u);  // enq_qdepth 5 + 1 cell
}

TEST(Pipeline, ObserverSeesDequeueTimes) {
  PrintQueuePipeline pipe(small_config());
  pipe.enable_port(0);
  RecordingObserver obs;
  pipe.set_observer(&obs);
  pipe.on_egress(ctx(0, 1, 100, 20));
  pipe.on_egress(ctx(0, 2, 150, 30));
  ASSERT_EQ(obs.times.size(), 2u);
  EXPECT_EQ(obs.times[0], 120u);
  EXPECT_EQ(obs.times[1], 180u);
}

TEST(Pipeline, DelayTriggerFiresDataPlaneQuery) {
  PipelineConfig cfg = small_config();
  cfg.dq_delay_threshold_ns = 1000;
  PrintQueuePipeline pipe(cfg);
  pipe.enable_port(0);
  RecordingObserver obs;
  pipe.set_observer(&obs);
  pipe.on_egress(ctx(0, 1, 0, 500));  // below threshold
  EXPECT_TRUE(obs.triggers.empty());
  pipe.on_egress(ctx(0, 2, 100, 1500));  // above
  ASSERT_EQ(obs.triggers.size(), 1u);
  EXPECT_EQ(obs.triggers[0].victim_flow, make_flow(2));
  EXPECT_EQ(obs.triggers[0].enq_timestamp, 100u);
  EXPECT_EQ(obs.triggers[0].deq_timestamp, 1600u);
  EXPECT_EQ(pipe.dq_triggers_fired(), 1u);
}

TEST(Pipeline, DepthTriggerFiresDataPlaneQuery) {
  PipelineConfig cfg = small_config();
  cfg.dq_depth_threshold_cells = 50;
  PrintQueuePipeline pipe(cfg);
  pipe.enable_port(0);
  RecordingObserver obs;
  pipe.set_observer(&obs);
  pipe.on_egress(ctx(0, 1, 0, 10, 49));
  EXPECT_TRUE(obs.triggers.empty());
  pipe.on_egress(ctx(0, 2, 10, 10, 80));
  EXPECT_EQ(obs.triggers.size(), 1u);
}

TEST(Pipeline, ProbeFlowTriggerFiresRegardlessOfDelay) {
  // Section 6.2's end-host probe: any packet of the designated flow
  // freezes the registers, even with zero queuing delay.
  PipelineConfig cfg = small_config();
  cfg.dq_probe_flow = make_flow(77);
  PrintQueuePipeline pipe(cfg);
  pipe.enable_port(0);
  RecordingObserver obs;
  pipe.set_observer(&obs);
  pipe.on_egress(ctx(0, 1, 0, 0));   // ordinary traffic: no trigger
  EXPECT_TRUE(obs.triggers.empty());
  pipe.on_egress(ctx(0, 77, 10, 0));  // the probe
  ASSERT_EQ(obs.triggers.size(), 1u);
  EXPECT_EQ(obs.triggers[0].victim_flow, make_flow(77));
}

TEST(Pipeline, ConcurrentTriggersAreIgnoredWhileLocked) {
  PipelineConfig cfg = small_config();
  cfg.dq_delay_threshold_ns = 100;
  PrintQueuePipeline pipe(cfg);
  pipe.enable_port(0);
  RecordingObserver obs;
  pipe.set_observer(&obs);
  pipe.on_egress(ctx(0, 1, 0, 200));
  pipe.on_egress(ctx(0, 2, 10, 200));  // still locked
  EXPECT_EQ(obs.triggers.size(), 1u);
  EXPECT_EQ(pipe.dq_triggers_ignored(), 1u);
  // After the control plane releases the lock, triggers fire again.
  pipe.windows().end_dataplane_query();
  pipe.monitor().end_dataplane_query();
  pipe.on_egress(ctx(0, 3, 20, 200));
  EXPECT_EQ(obs.triggers.size(), 2u);
}

TEST(Pipeline, TriggerWithoutObserverUnlocksImmediately) {
  PipelineConfig cfg = small_config();
  cfg.dq_delay_threshold_ns = 100;
  PrintQueuePipeline pipe(cfg);
  pipe.enable_port(0);
  pipe.on_egress(ctx(0, 1, 0, 200));
  EXPECT_FALSE(pipe.windows().dataplane_query_locked());
  EXPECT_FALSE(pipe.monitor().dataplane_query_locked());
}

TEST(Pipeline, TriggerCapturesVictimsOwnUpdate) {
  // The victim's own packet must be in the frozen special set (it was
  // written before the freeze), so its direct culprits are queryable.
  PipelineConfig cfg = small_config();
  cfg.dq_delay_threshold_ns = 100;
  PrintQueuePipeline pipe(cfg);
  const auto prefix = pipe.enable_port(0);
  RecordingObserver obs;
  pipe.set_observer(&obs);
  pipe.on_egress(ctx(0, 42, 0, 200));
  ASSERT_EQ(obs.triggers.size(), 1u);
  const auto frozen =
      pipe.windows().read_bank(obs.triggers[0].window_bank, prefix);
  bool found = false;
  for (const auto& c : frozen[0]) {
    found |= (c.occupied && c.flow == make_flow(42));
  }
  EXPECT_TRUE(found);
}

TEST(Pipeline, GapEwmaTracksInterDepartureTimes) {
  PrintQueuePipeline pipe(small_config());
  const auto prefix = pipe.enable_port(0);
  EXPECT_DOUBLE_EQ(pipe.avg_deq_gap_ns(prefix), 0.0);
  Timestamp t = 0;
  for (int i = 0; i < 500; ++i) {
    t += 64;
    pipe.on_egress(ctx(0, 1, t, 0, /*qdepth=*/5));  // busy-period gaps only
  }
  EXPECT_NEAR(pipe.avg_deq_gap_ns(prefix), 64.0, 1.0);
  // Idle-period gaps (empty queue) must not pollute the estimate.
  t += 1'000'000;
  pipe.on_egress(ctx(0, 1, t, 0, /*qdepth=*/0));
  EXPECT_NEAR(pipe.avg_deq_gap_ns(prefix), 64.0, 1.0);
}

}  // namespace
}  // namespace pq::core
