#include "core/queue_monitor.h"

#include <gtest/gtest.h>

namespace pq::core {
namespace {

QueueMonitorParams small_params(std::uint32_t max_depth = 100,
                                std::uint32_t granularity = 1) {
  QueueMonitorParams p;
  p.max_depth_cells = max_depth;
  p.granularity_cells = granularity;
  return p;
}

TEST(QueueMonitor, ValidatesParams) {
  QueueMonitorParams p;
  p.max_depth_cells = 0;
  EXPECT_THROW(QueueMonitor{p}, std::invalid_argument);
  p = QueueMonitorParams{};
  p.granularity_cells = 0;
  EXPECT_THROW(QueueMonitor{p}, std::invalid_argument);
}

TEST(QueueMonitor, RisingDepthWritesIncreaseEntries) {
  QueueMonitor qm(small_params());
  qm.on_packet(0, make_flow(1), 3);
  qm.on_packet(0, make_flow(2), 7);
  const auto s = qm.read_bank(qm.active_bank(), 0);
  EXPECT_EQ(s.top, 7u);
  ASSERT_TRUE(s.entries[3].inc.valid);
  EXPECT_EQ(s.entries[3].inc.flow, make_flow(1));
  ASSERT_TRUE(s.entries[7].inc.valid);
  EXPECT_EQ(s.entries[7].inc.flow, make_flow(2));
  EXPECT_LT(s.entries[3].inc.seq, s.entries[7].inc.seq);
  EXPECT_FALSE(s.entries[3].dec.valid);
}

TEST(QueueMonitor, FallingDepthWritesDecreaseEntries) {
  QueueMonitor qm(small_params());
  qm.on_packet(0, make_flow(1), 9);
  qm.on_packet(0, make_flow(2), 4);  // queue drained between arrivals
  const auto s = qm.read_bank(qm.active_bank(), 0);
  EXPECT_EQ(s.top, 4u);
  ASSERT_TRUE(s.entries[4].dec.valid);
  EXPECT_EQ(s.entries[4].dec.flow, make_flow(2));
  EXPECT_FALSE(s.entries[4].inc.valid);
}

TEST(QueueMonitor, EqualDepthWritesNothing) {
  QueueMonitor qm(small_params());
  qm.on_packet(0, make_flow(1), 5);
  qm.on_packet(0, make_flow(2), 5);
  const auto s = qm.read_bank(qm.active_bank(), 0);
  EXPECT_EQ(s.entries[5].inc.flow, make_flow(1));  // not overwritten
  EXPECT_FALSE(s.entries[5].dec.valid);
}

TEST(QueueMonitor, PaperFig7Example) {
  // Fig. 7: (1) B brings the queue from 2 to 5; (2) it drains back to 2;
  // (3) D brings it to 7. The stale increase entry at 5 must be filtered
  // out by the sequence-number walk; 2 and 7 survive.
  QueueMonitor qm(small_params());
  qm.on_packet(0, make_flow('A'), 2);  // A brings depth to 2
  qm.on_packet(0, make_flow('B'), 5);  // B: 2 -> 5
  qm.on_packet(0, make_flow('C'), 2);  // drain observed: 5 -> 2
  qm.on_packet(0, make_flow('D'), 7);  // D: 2 -> 7
  const auto s = qm.read_bank(qm.active_bank(), 0);
  EXPECT_EQ(s.top, 7u);

  const auto culprits = original_culprits(s);
  ASSERT_EQ(culprits.size(), 2u);
  EXPECT_EQ(culprits[0].flow, make_flow('A'));
  EXPECT_EQ(culprits[0].level, 2u);
  EXPECT_EQ(culprits[1].flow, make_flow('D'));
  EXPECT_EQ(culprits[1].level, 7u);
  // B's entry at level 5 is stale: the decrease at 2 has a higher sequence
  // number than B's increase.
  for (const auto& c : culprits) EXPECT_NE(c.flow, make_flow('B'));
}

TEST(QueueMonitor, MultiplePeaksOnlyLatestBuildupSurvives) {
  QueueMonitor qm(small_params());
  qm.on_packet(0, make_flow(1), 10);  // first peak
  qm.on_packet(0, make_flow(2), 0);   // full drain
  qm.on_packet(0, make_flow(3), 4);   // second buildup
  qm.on_packet(0, make_flow(4), 8);
  const auto culprits = original_culprits(qm.read_bank(qm.active_bank(), 0));
  ASSERT_EQ(culprits.size(), 2u);
  EXPECT_EQ(culprits[0].flow, make_flow(3));
  EXPECT_EQ(culprits[1].flow, make_flow(4));
}

TEST(QueueMonitor, WalkStopsAtTopPointer) {
  QueueMonitor qm(small_params());
  qm.on_packet(0, make_flow(1), 50);
  qm.on_packet(0, make_flow(2), 20);  // drain to 20; top = 20
  const auto s = qm.read_bank(qm.active_bank(), 0);
  EXPECT_EQ(s.top, 20u);
  // Level 50's increase entry is above the top and must not be returned.
  for (const auto& c : original_culprits(s)) {
    EXPECT_LE(c.level, 20u);
  }
}

TEST(QueueMonitor, GranularityBucketsLevels) {
  QueueMonitor qm(small_params(1000, 10));
  qm.on_packet(0, make_flow(1), 57);   // level 5
  qm.on_packet(0, make_flow(2), 179);  // level 17
  const auto s = qm.read_bank(qm.active_bank(), 0);
  EXPECT_TRUE(s.entries[5].inc.valid);
  EXPECT_TRUE(s.entries[17].inc.valid);
  EXPECT_EQ(s.top, 17u);
}

TEST(QueueMonitor, DepthBeyondMaxClampsToLastLevel) {
  QueueMonitor qm(small_params(10));
  qm.on_packet(0, make_flow(1), 500);
  const auto s = qm.read_bank(qm.active_bank(), 0);
  EXPECT_EQ(s.top, 10u);
  EXPECT_TRUE(s.entries[10].inc.valid);
}

TEST(QueueMonitor, PortsAreIsolated) {
  QueueMonitorParams p = small_params();
  p.num_ports = 2;
  QueueMonitor qm(p);
  qm.on_packet(0, make_flow(1), 5);
  qm.on_packet(1, make_flow(2), 9);
  const auto s0 = qm.read_bank(qm.active_bank(), 0);
  const auto s1 = qm.read_bank(qm.active_bank(), 1);
  EXPECT_EQ(s0.top, 5u);
  EXPECT_EQ(s1.top, 9u);
  EXPECT_TRUE(s0.entries[5].inc.valid);
  EXPECT_FALSE(s0.entries[9].inc.valid);
  EXPECT_TRUE(s1.entries[9].inc.valid);
}

TEST(QueueMonitor, FlipPreservesFrozenBankAndCursorContinuity) {
  QueueMonitor qm(small_params());
  qm.on_packet(0, make_flow(1), 5);
  const auto frozen = qm.flip_periodic();
  // Depth tracking continues: a lower depth after the flip is a decrease.
  qm.on_packet(0, make_flow(2), 3);
  const auto fresh = qm.read_bank(qm.active_bank(), 0);
  EXPECT_TRUE(fresh.entries[3].dec.valid);
  // The frozen bank still holds the pre-flip increase.
  const auto old = qm.read_bank(frozen, 0);
  EXPECT_TRUE(old.entries[5].inc.valid);
}

TEST(QueueMonitor, DataPlaneQueryLockSemantics) {
  QueueMonitor qm(small_params());
  qm.on_packet(0, make_flow(1), 5);
  const int special = qm.begin_dataplane_query();
  ASSERT_GE(special, 0);
  EXPECT_EQ(qm.begin_dataplane_query(), -1);
  qm.end_dataplane_query();
  EXPECT_GE(qm.begin_dataplane_query(), 0);
}

TEST(QueueMonitor, SequenceNumbersStayMonotonicAcrossBanks) {
  QueueMonitor qm(small_params());
  qm.on_packet(0, make_flow(1), 5);
  qm.flip_periodic();
  qm.on_packet(0, make_flow(2), 8);
  qm.flip_periodic();  // back to the first bank
  qm.on_packet(0, make_flow(3), 12);
  const auto s = qm.read_bank(qm.active_bank(), 0);
  // The stale entry at 5 (old epoch) has a lower seq than the fresh one at
  // 12, so the walk still treats 12 as valid.
  const auto culprits = original_culprits(s);
  bool found12 = false;
  for (const auto& c : culprits) found12 |= (c.level == 12);
  EXPECT_TRUE(found12);
}

TEST(QueueMonitor, CulpritCountsAggregatePerFlow) {
  std::vector<OriginalCulprit> culprits = {
      {make_flow(1), 2, 1}, {make_flow(1), 5, 2}, {make_flow(2), 9, 3}};
  const auto counts = culprit_counts(culprits);
  EXPECT_DOUBLE_EQ(counts.at(make_flow(1)), 2.0);
  EXPECT_DOUBLE_EQ(counts.at(make_flow(2)), 1.0);
}

TEST(QueueMonitor, SramMatchesPaperSinglePortFigure) {
  // Section 7.2 reports 12.81% of data-plane SRAM for a single-port queue
  // monitor. With a 20k-entry stack, 24 B entries and 4 register banks our
  // model lands in the same ballpark (~12%) of the 15.36 MB Tofino budget.
  QueueMonitorParams p;
  p.max_depth_cells = 20000;
  QueueMonitor qm(p);
  const double frac = static_cast<double>(qm.sram_bytes()) /
                      (12.0 * 80 * 16 * 1024);
  EXPECT_GT(frac, 0.10);
  EXPECT_LT(frac, 0.16);
}

}  // namespace
}  // namespace pq::core
