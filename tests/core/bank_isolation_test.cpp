// Register-bank isolation properties (paper Fig. 8), parameterized over the
// layout: writes to the active bank must never perturb frozen banks, and
// the TTS decomposition must be a bijection.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/time_windows.h"

namespace pq::core {
namespace {

class LayoutProperty
    : public ::testing::TestWithParam<std::pair<std::uint32_t,
                                                std::uint32_t>> {};

TEST_P(LayoutProperty, TtsDecompositionRoundTrips) {
  const auto [m0, k] = GetParam();
  TimeWindowParams p;
  p.m0 = m0;
  p.k = k;
  const TtsLayout layout(p);
  Rng rng(m0 * 31 + k);
  for (int i = 0; i < 20000; ++i) {
    const Timestamp ts = rng();
    const std::uint64_t tts = layout.tts0(ts);
    EXPECT_EQ(layout.combine(layout.cycle_of(tts), layout.index_of(tts)),
              tts);
    EXPECT_LT(layout.index_of(tts), 1ull << k);
  }
}

TEST_P(LayoutProperty, AdjacentCellPeriodsGetAdjacentIndices) {
  const auto [m0, k] = GetParam();
  TimeWindowParams p;
  p.m0 = m0;
  p.k = k;
  const TtsLayout layout(p);
  const Timestamp base = 0x12345678;
  const std::uint64_t a = layout.tts0(base);
  const std::uint64_t b = layout.tts0(base + (1ull << m0));
  EXPECT_EQ(b, a + 1);
}

INSTANTIATE_TEST_SUITE_P(
    M0K, LayoutProperty,
    ::testing::Values(std::make_pair(4u, 6u), std::make_pair(6u, 12u),
                      std::make_pair(10u, 12u), std::make_pair(7u, 9u)),
    [](const auto& tpi) {
      // += rather than operator+ chains: GCC 12 -Wrestrict false positive.
      std::string n = "m";
      n += std::to_string(tpi.param.first);
      n += "_k";
      n += std::to_string(tpi.param.second);
      return n;
    });

std::uint64_t bank_checksum(const TimeWindowSet& tw, std::uint32_t bank) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  const auto state = tw.read_bank(bank, 0);
  for (const auto& window : state) {
    for (const auto& c : window) {
      h = mix64(h ^ flow_signature(c.flow) ^ c.cycle_id ^
                (c.occupied ? 0x9e3779b9 : 0));
    }
  }
  return h;
}

TEST(BankIsolation, ActiveWritesNeverTouchFrozenBanks) {
  TimeWindowParams p;
  p.m0 = 4;
  p.alpha = 1;
  p.k = 6;
  p.num_windows = 3;
  TimeWindowSet tw(p);
  Rng rng(5);

  Timestamp t = 0;
  auto burst = [&](int n) {
    for (int i = 0; i < n; ++i) {
      t += 8 + rng.uniform_below(24);
      tw.on_packet(0, make_flow(static_cast<std::uint32_t>(i % 13)), t);
    }
  };

  burst(2000);
  const std::uint32_t frozen1 = tw.flip_periodic();
  const std::uint64_t sum1 = bank_checksum(tw, frozen1);

  burst(2000);
  // The frozen bank is untouched by the second burst.
  EXPECT_EQ(bank_checksum(tw, frozen1), sum1);

  // A data-plane query freezes another bank; both frozen banks stay
  // stable while traffic continues in the remaining pair.
  const int special = tw.begin_dataplane_query();
  ASSERT_GE(special, 0);
  const std::uint64_t sum2 =
      bank_checksum(tw, static_cast<std::uint32_t>(special));
  burst(2000);
  tw.flip_periodic();
  burst(2000);
  EXPECT_EQ(bank_checksum(tw, frozen1), sum1);
  EXPECT_EQ(bank_checksum(tw, static_cast<std::uint32_t>(special)), sum2);
  tw.end_dataplane_query();
}

TEST(BankIsolation, FourBanksAreDistinctStorage) {
  TimeWindowParams p;
  p.m0 = 4;
  p.alpha = 1;
  p.k = 4;
  p.num_windows = 2;
  TimeWindowSet tw(p);
  // Write a distinctive flow into each bank in turn.
  for (std::uint32_t b = 0; b < 4; ++b) {
    tw.on_packet(0, make_flow(1000 + tw.active_bank()), 0x50);
    if (b == 1) {
      tw.begin_dataplane_query();
    } else {
      tw.flip_periodic();
    }
  }
  tw.end_dataplane_query();
  // Each bank holds exactly the flow written while it was active.
  std::set<std::uint32_t> seen;
  for (std::uint32_t b = 0; b < 4; ++b) {
    const auto state = tw.read_bank(b, 0);
    for (const auto& c : state[0]) {
      if (c.occupied) seen.insert(c.flow.src_ip & 0xffff);
    }
  }
  EXPECT_EQ(seen.size(), 4u);
}

}  // namespace
}  // namespace pq::core
