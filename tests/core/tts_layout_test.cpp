#include "core/tts_layout.h"

#include <gtest/gtest.h>

namespace pq::core {
namespace {

TimeWindowParams params(std::uint32_t m0, std::uint32_t alpha, std::uint32_t k,
                        std::uint32_t T) {
  TimeWindowParams p;
  p.m0 = m0;
  p.alpha = alpha;
  p.k = k;
  p.num_windows = T;
  return p;
}

TEST(TtsLayout, PaperFig5Example) {
  // Paper Fig. 5: timestamp 0xAAA9105A with m0 = 7, k = 12 splits into
  // cycle ID 1010101010101b and index 001000100000b.
  const TtsLayout layout(params(7, 1, 12, 4));
  const std::uint64_t tts = layout.tts0(0xAAA9105A);
  EXPECT_EQ(tts, 0xAAA9105Au >> 7);
  EXPECT_EQ(layout.cycle_of(tts), 0b1010101010101u);
  EXPECT_EQ(layout.index_of(tts), 0b001000100000u);
  EXPECT_EQ(layout.combine(layout.cycle_of(tts), layout.index_of(tts)), tts);
}

TEST(TtsLayout, ValidatesParams) {
  EXPECT_THROW(TtsLayout(params(6, 0, 12, 4)), std::invalid_argument);
  EXPECT_THROW(TtsLayout(params(6, 1, 0, 4)), std::invalid_argument);
  EXPECT_THROW(TtsLayout(params(6, 1, 12, 0)), std::invalid_argument);
  EXPECT_THROW(TtsLayout(params(25, 1, 12, 4)), std::invalid_argument);
}

TEST(TtsLayout, Wrap32RequiresHeadroom) {
  TimeWindowParams p = params(20, 1, 12, 4);
  p.wrap32 = true;
  EXPECT_THROW(TtsLayout{p}, std::invalid_argument);
  p = params(6, 1, 12, 4);
  p.wrap32 = true;
  EXPECT_NO_THROW(TtsLayout{p});
}

TEST(TtsLayout, Wrap32MasksHighBits) {
  TimeWindowParams p = params(6, 1, 12, 4);
  p.wrap32 = true;
  const TtsLayout layout(p);
  EXPECT_EQ(layout.tts0(0x1'0000'0040ull), layout.tts0(0x40));
}

TEST(TtsLayout, CellPeriodGrowsByAlphaBitsPerWindow) {
  const TtsLayout layout(params(6, 2, 12, 4));
  EXPECT_EQ(layout.cell_period_ns(0), 64u);
  EXPECT_EQ(layout.cell_period_ns(1), 256u);
  EXPECT_EQ(layout.cell_period_ns(2), 1024u);
  EXPECT_EQ(layout.cell_period_ns(3), 4096u);
}

TEST(TtsLayout, WindowPeriodIsCellPeriodTimesCells) {
  const TtsLayout layout(params(6, 1, 12, 4));
  for (std::uint32_t i = 0; i < 4; ++i) {
    EXPECT_EQ(layout.window_period_ns(i),
              layout.cell_period_ns(i) << 12);
  }
}

TEST(TtsLayout, SetPeriodMatchesClosedForm) {
  // Paper Section 4.2: set period = (2^(alpha*T)-1)/(2^alpha-1) * 2^(m0+k).
  for (std::uint32_t alpha : {1u, 2u, 3u}) {
    for (std::uint32_t T : {2u, 3u, 4u, 5u}) {
      const TtsLayout layout(params(6, alpha, 12, T));
      const std::uint64_t numer = (1ull << (alpha * T)) - 1;
      const std::uint64_t denom = (1ull << alpha) - 1;
      EXPECT_EQ(layout.set_period_ns(), numer / denom * (1ull << 18))
          << "alpha=" << alpha << " T=" << T;
    }
  }
}

TEST(TtsLayout, PaperExampleCellPeriods) {
  // Section 7.1: with alpha=3, T=4, m0=6 the four cell periods are
  // 64 ns, 512 ns, 4 us, and ~32 us.
  const TtsLayout layout(params(6, 3, 12, 4));
  EXPECT_EQ(layout.cell_period_ns(0), 64u);
  EXPECT_EQ(layout.cell_period_ns(1), 512u);
  EXPECT_EQ(layout.cell_period_ns(2), 4096u);
  EXPECT_EQ(layout.cell_period_ns(3), 32768u);
}

TEST(TtsLayout, Window0PeriodExceeds100usWithPaperParams) {
  // Section 4.1: window 0 typically covers more than 100 us, so microburst
  // queries are served at full fidelity.
  const TtsLayout layout(params(6, 2, 12, 4));
  EXPECT_GT(layout.window_period_ns(0), 100'000u);
}

TEST(TtsLayout, CellSpanIsHalfOpenAndContiguous) {
  const TtsLayout layout(params(4, 1, 8, 3));
  for (std::uint32_t w = 0; w < 3; ++w) {
    const auto a = layout.cell_span(w, 10);
    const auto b = layout.cell_span(w, 11);
    EXPECT_EQ(a.hi - a.lo, layout.cell_period_ns(w));
    EXPECT_EQ(a.hi, b.lo);
  }
}

TEST(TtsLayout, SpanContainsOriginalTimestamp) {
  const TtsLayout layout(params(6, 2, 12, 4));
  for (Timestamp ts : {0ull, 63ull, 64ull, 123456789ull, 0xffffffffull}) {
    const auto span = layout.cell_span(0, layout.tts0(ts));
    EXPECT_GE(ts, span.lo);
    EXPECT_LT(ts, span.hi);
  }
}

TEST(TtsLayout, TtsBitsAccountsForM0AndWrap) {
  EXPECT_EQ(TtsLayout(params(6, 1, 12, 4)).tts_bits(), 58u);
  TimeWindowParams p = params(6, 1, 12, 4);
  p.wrap32 = true;
  EXPECT_EQ(TtsLayout(p).tts_bits(), 26u);
}

}  // namespace
}  // namespace pq::core
