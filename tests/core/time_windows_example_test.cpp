// Replays the mechanics of the paper's Fig. 6 worked example
// (k = 2, T = 3, alpha = 1): the passing rule in action, including the
// same-cycle drop, the stale-cycle drop, and the recursive pass into
// window 2.
#include <gtest/gtest.h>

#include "core/time_windows.h"

namespace pq::core {
namespace {

class Fig6Test : public ::testing::Test {
 protected:
  Fig6Test() : tw_(make_params()) {}

  static TimeWindowParams make_params() {
    TimeWindowParams p;
    p.m0 = 2;
    p.alpha = 1;
    p.k = 2;
    p.num_windows = 3;
    return p;
  }

  /// Sends a packet whose window-0 TTS is (cycle << 2) | index.
  void send(std::uint64_t cycle, std::uint64_t index, std::uint32_t flow) {
    const std::uint64_t tts = (cycle << 2) | index;
    tw_.on_packet(0, make_flow(flow), tts << 2 /* m0 */);
  }

  WindowCell cell(std::uint32_t window, std::uint64_t index) {
    return tw_.read_bank(tw_.active_bank(), 0)[window][index];
  }

  TimeWindowSet tw_;
};

TEST_F(Fig6Test, FreshPacketsLandInEmptyCells) {
  // Fig. 6 initial state: A, B, D stored at indices 0, 1, 3 of window 0.
  send(0, 0, 'A');
  send(0, 1, 'B');
  send(0, 3, 'D');
  EXPECT_EQ(cell(0, 0).flow, make_flow('A'));
  EXPECT_EQ(cell(0, 1).flow, make_flow('B'));
  EXPECT_EQ(cell(0, 3).flow, make_flow('D'));
  EXPECT_FALSE(cell(0, 2).occupied);
  EXPECT_FALSE(cell(1, 0).occupied);  // nothing passed yet
}

TEST_F(Fig6Test, NextCyclePassesEvictedPacketToNextWindow) {
  send(0, 0, 'A');
  send(1, 0, 'X');  // cycle diff exactly 1: A passes to window 1
  EXPECT_EQ(cell(0, 0).flow, make_flow('X'));
  EXPECT_EQ(cell(0, 0).cycle_id, 1u);
  // A's window-0 TTS was 0; shifted by alpha it lands at window-1 index 0.
  ASSERT_TRUE(cell(1, 0).occupied);
  EXPECT_EQ(cell(1, 0).flow, make_flow('A'));
  EXPECT_EQ(cell(1, 0).cycle_id, 0u);
}

TEST_F(Fig6Test, SameCycleCollisionInNextWindowDropsOlder) {
  // The paper's step 1: cells 0 and 1 of window 0 both map to cell 0 of
  // window 1. A arrives first, is evicted by B; same cycle ID in window 1,
  // so A is dropped rather than passed further.
  send(0, 0, 'A');
  send(0, 1, 'B');
  send(1, 0, 'X');  // passes A -> window 1 cell 0
  send(1, 1, 'Y');  // passes B -> window 1 cell 0, evicting A (same cycle)
  ASSERT_TRUE(cell(1, 0).occupied);
  EXPECT_EQ(cell(1, 0).flow, make_flow('B'));
  EXPECT_FALSE(cell(2, 0).occupied);  // A was dropped, not passed
  EXPECT_EQ(tw_.stats().dropped[1], 1u);
}

TEST_F(Fig6Test, StaleCycleIsDroppedNotPassed) {
  // The paper's step 2: an incoming packet whose cycle ID is 2+ ahead
  // evicts without passing ("its cycle ID is too far in the past").
  send(0, 3, 'D');
  send(2, 3, 'A');  // cycle jumps 0 -> 2
  EXPECT_EQ(cell(0, 3).flow, make_flow('A'));
  EXPECT_FALSE(cell(1, 1).occupied);  // D (TTS 3 >> 1 = 1) never arrived
  EXPECT_EQ(tw_.stats().dropped[0], 1u);
  EXPECT_EQ(tw_.stats().passed[0], 0u);
}

TEST_F(Fig6Test, RecursivePassReachesWindow2) {
  // The paper's step 3: a pass into window 1 evicts a packet whose cycle is
  // exactly one less, so that packet recursively passes into window 2.
  send(0, 0, 'A');
  send(1, 0, 'X');  // A -> window 1, cycle 0 (w1 TTS 0)
  send(2, 0, 'B');  // X (w0 TTS 4) -> window 1 TTS 2: index 2, no conflict
  send(3, 0, 'C');  // B (w0 TTS 8) -> window 1 TTS 4: index 0 cycle 1;
                    // evicts A (cycle 0): diff 1 -> A passes to window 2.
  ASSERT_TRUE(cell(2, 0).occupied);
  EXPECT_EQ(cell(2, 0).flow, make_flow('A'));
  EXPECT_EQ(tw_.stats().passed[1], 1u);
}

TEST_F(Fig6Test, SameCellSameCycleReplacesWithoutPassing) {
  // Two packets in the same cell period: the newer replaces the older and
  // the older is dropped (cycle diff 0).
  send(5, 2, 'A');
  send(5, 2, 'B');
  EXPECT_EQ(cell(0, 2).flow, make_flow('B'));
  EXPECT_FALSE(cell(1, 1).occupied);
  EXPECT_EQ(tw_.stats().dropped[0], 1u);
}

TEST_F(Fig6Test, PassedPacketIsNewestInItsWindow) {
  // Invariant from Section 4.2: "When a packet is passed into a given time
  // window, it is guaranteed to be the newest one."
  send(0, 0, 'A');
  send(0, 1, 'B');
  send(0, 2, 'C');
  send(1, 0, 'X');
  send(1, 1, 'Y');
  send(1, 2, 'Z');
  // Window 1 now holds the last passed packet at the highest TTS among its
  // occupied cells.
  std::uint64_t max_tts = 0;
  std::uint64_t last_pass_tts = 0;
  const auto state = tw_.read_bank(tw_.active_bank(), 0);
  for (std::uint64_t j = 0; j < 4; ++j) {
    if (!state[1][j].occupied) continue;
    const std::uint64_t tts = (state[1][j].cycle_id << 2) | j;
    max_tts = std::max(max_tts, tts);
    if (state[1][j].flow == make_flow('C')) last_pass_tts = tts;
  }
  EXPECT_EQ(last_pass_tts, max_tts);
}

}  // namespace
}  // namespace pq::core
