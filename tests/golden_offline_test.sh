#!/usr/bin/env bash
# Golden-file end-to-end test: replay the committed trace fixture, save
# register records, query them offline, and compare pq_offline's output
# byte-for-byte against the committed expectation. Runs the replay through
# both the scalar oracle (--batch 1) and the batched hot path
# (--batch 256 --threads 2); both must reproduce the same golden bytes —
# the whole-toolchain form of the batch determinism contract
# (docs/ARCHITECTURE.md §10).
#
# $1 is the directory holding the pq_* binaries (a build root is accepted
# and resolved to its tools/ subdirectory); $2 is tests/data/.
#
# To regenerate the fixture and expectation after an intentional output
# change:
#   pq_gentrace burst tests/data/golden_burst.pqt --ms 2 --seed 11
#   pq_replay tests/data/golden_burst.pqt --save-records /tmp/g.pqr --batch 1
#   pq_offline /tmp/g.pqr windows 0 500000 1500000 --top 5 \
#     >  tests/data/golden_offline_expected.txt
#   pq_offline /tmp/g.pqr monitor 0 1000000 \
#     >> tests/data/golden_offline_expected.txt
set -euo pipefail

TOOLS_DIR="${1:?usage: golden_offline_test.sh <tools-dir-or-build-dir> <data-dir>}"
DATA_DIR="${2:?usage: golden_offline_test.sh <tools-dir-or-build-dir> <data-dir>}"
if [[ ! -x "$TOOLS_DIR/pq_replay" && -x "$TOOLS_DIR/tools/pq_replay" ]]; then
  TOOLS_DIR="$TOOLS_DIR/tools"
fi
if [[ ! -x "$TOOLS_DIR/pq_replay" ]]; then
  echo "pq_replay not found under '$1'" >&2
  exit 2
fi
TRACE="$DATA_DIR/golden_burst.pqt"
EXPECTED="$DATA_DIR/golden_offline_expected.txt"
test -f "$TRACE" || { echo "missing fixture $TRACE" >&2; exit 2; }
test -f "$EXPECTED" || { echo "missing golden $EXPECTED" >&2; exit 2; }

WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

run_offline_queries() {
  local records="$1" out="$2"
  "$TOOLS_DIR/pq_offline" "$records" windows 0 500000 1500000 --top 5 > "$out"
  "$TOOLS_DIR/pq_offline" "$records" monitor 0 1000000 >> "$out"
}

# Scalar oracle.
"$TOOLS_DIR/pq_replay" "$TRACE" --batch 1 \
  --save-records "$WORK/scalar.pqr" > /dev/null
run_offline_queries "$WORK/scalar.pqr" "$WORK/scalar.txt"
if ! diff -u "$EXPECTED" "$WORK/scalar.txt"; then
  echo "scalar replay diverged from the golden output" >&2
  exit 1
fi

# Batched hot path: same records, same golden bytes.
"$TOOLS_DIR/pq_replay" "$TRACE" --batch 256 --threads 2 \
  --save-records "$WORK/batched.pqr" > /dev/null
run_offline_queries "$WORK/batched.pqr" "$WORK/batched.txt"
if ! diff -u "$EXPECTED" "$WORK/batched.txt"; then
  echo "batched replay diverged from the golden output" >&2
  exit 1
fi
cmp "$WORK/scalar.pqr" "$WORK/batched.pqr" || {
  echo "records files differ between batch 1 and batch 256" >&2
  exit 1
}

echo "golden offline ok"
