#!/usr/bin/env bash
# Archive v2 compatibility battery: the committed v1 golden archive
# (tests/data/golden_archive_v1/, written by a pinned older build), a
# mixed v1+v2 chain produced by compacting it, and a fresh v2-only archive
# must all answer the culprit queries byte-identically to pq_offline over
# records rebuilt from the same trace with the same parameters. On top of
# that: compaction must actually shrink the cold bytes, the indexed
# `--as-of` seek must byte-match the forced full scan, and `--strict` must
# still exit 3 when a v2 tail is torn.
#
# Regenerating the fixture (only after a deliberate v1 format change —
# which should never happen; v1 is frozen):
#   pq_replay tests/data/golden_burst.pqt --batch 256 \
#     --m0 8 --alpha 2 --k 8 --T 3 --archive-dir tests/data/golden_archive_v1 \
#     --archive-format 1 --archive-segment-bytes 196608 --archive-fsync segment
#
# $1 is the directory holding the pq_* binaries (a build root is accepted
# and resolved to its tools/ subdirectory); $2 is tests/data/.
set -euo pipefail

TOOLS_DIR="${1:?usage: golden_archive_v2_test.sh <tools-dir-or-build-dir> <data-dir>}"
DATA_DIR="${2:?usage: golden_archive_v2_test.sh <tools-dir-or-build-dir> <data-dir>}"
if [[ ! -x "$TOOLS_DIR/pq_replay" && -x "$TOOLS_DIR/tools/pq_replay" ]]; then
  TOOLS_DIR="$TOOLS_DIR/tools"
fi
for bin in pq_replay pq_offline pq_query pq_compact; do
  if [[ ! -x "$TOOLS_DIR/$bin" ]]; then
    echo "$bin not found under '$1'" >&2
    exit 2
  fi
done
TRACE="$DATA_DIR/golden_burst.pqt"
FIXTURE="$DATA_DIR/golden_archive_v1"
test -f "$TRACE" || { echo "missing fixture $TRACE" >&2; exit 2; }
test -d "$FIXTURE" || { echo "missing fixture $FIXTURE" >&2; exit 2; }

WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT
PARAMS=(--m0 8 --alpha 2 --k 8 --T 3)

# The oracle: pq_offline over records rebuilt live with the fixture params.
"$TOOLS_DIR/pq_replay" "$TRACE" --batch 256 "${PARAMS[@]}" \
  --save-records "$WORK/g.pqr" > /dev/null
"$TOOLS_DIR/pq_offline" "$WORK/g.pqr" windows 0 500000 1500000 --top 5 \
  | sed 1d >  "$WORK/want.txt"
"$TOOLS_DIR/pq_offline" "$WORK/g.pqr" monitor 0 1000000 \
  | sed 1d >> "$WORK/want.txt"

ask() { # ask <archive-dir> <out-file> [extra pq_query args...]
  local dir="$1" out="$2"; shift 2
  "$TOOLS_DIR/pq_query" "$dir" windows 0 500000 1500000 --top 5 "$@" \
    | sed 1d >  "$out"
  "$TOOLS_DIR/pq_query" "$dir" monitor 0 1000000 "$@" \
    | sed 1d >> "$out"
}

# 1. The committed v1-only chain answers like pq_offline.
ask "$FIXTURE" "$WORK/v1.txt"
diff -u "$WORK/want.txt" "$WORK/v1.txt" \
  || { echo "v1 fixture answers diverged" >&2; exit 1; }

# 2. Compacting it yields a mixed chain (cold segments v2, newest still
#    v1), smaller on disk, answering identically.
cp -r "$FIXTURE" "$WORK/mixed"
BEFORE=$(du -sb "$WORK/mixed" | cut -f1)
"$TOOLS_DIR/pq_compact" "$WORK/mixed" | tee "$WORK/compact.txt" >&2
grep -q ' 1 rewritten' "$WORK/compact.txt" \
  || { echo "compaction rewrote nothing" >&2; exit 1; }
AFTER=$(du -sb "$WORK/mixed" | cut -f1)
[[ "$AFTER" -lt "$BEFORE" ]] \
  || { echo "compaction did not shrink the archive ($BEFORE -> $AFTER)" >&2; exit 1; }
"$TOOLS_DIR/pq_query" "$WORK/mixed" info | grep -q 'seg 000000 v2' \
  || { echo "compacted cold segment is not v2" >&2; exit 1; }
"$TOOLS_DIR/pq_query" "$WORK/mixed" info | grep -q 'seg 000001 v1' \
  || { echo "protected newest segment changed format" >&2; exit 1; }
ask "$WORK/mixed" "$WORK/mixed.txt"
diff -u "$WORK/want.txt" "$WORK/mixed.txt" \
  || { echo "mixed-chain answers diverged" >&2; exit 1; }

# 3. A fresh v2-only archive answers identically too.
"$TOOLS_DIR/pq_replay" "$TRACE" --batch 256 "${PARAMS[@]}" \
  --archive-dir "$WORK/v2" --archive-format 2 \
  --archive-segment-bytes 196608 --archive-fsync segment > /dev/null
ask "$WORK/v2" "$WORK/v2.txt"
diff -u "$WORK/want.txt" "$WORK/v2.txt" \
  || { echo "v2 archive answers diverged" >&2; exit 1; }

# 4. The indexed --as-of seek byte-matches the forced full scan, across
#    every chain flavour and horizons on/off block boundaries.
for dir in "$FIXTURE" "$WORK/mixed" "$WORK/v2"; do
  for t in 100 1376474 2500000 3757067 99999999; do
    ask "$dir" "$WORK/seek_a.txt" --as-of "$t"
    ask "$dir" "$WORK/seek_b.txt" --as-of "$t" --full-scan
    diff -u "$WORK/seek_a.txt" "$WORK/seek_b.txt" \
      || { echo "indexed seek diverged from full scan ($dir, t=$t)" >&2; exit 1; }
  done
done

# 5. --strict still turns a torn v2 tail into exit code 3.
LAST_SEG="$(find "$WORK/v2" -name 'seg-*.pqs' | sort | tail -1)"
SIZE="$(stat -c %s "$LAST_SEG")"
truncate -s "$((SIZE - SIZE / 3))" "$LAST_SEG"
set +e
"$TOOLS_DIR/pq_query" "$WORK/v2" info --strict > /dev/null 2>&1
RC=$?
set -e
[[ "$RC" -eq 3 ]] \
  || { echo "--strict on a torn v2 tail exited $RC, want 3" >&2; exit 1; }

echo "golden archive v2 ok"
