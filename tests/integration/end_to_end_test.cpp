// End-to-end integration: trace generator -> egress-port simulator ->
// PrintQueue data plane + analysis program -> queries validated against
// telemetry-derived ground truth, with the baselines alongside.
#include <gtest/gtest.h>

#include "baseline/hashpipe.h"
#include "baseline/interval_adapter.h"
#include "control/analysis_program.h"
#include "ground/ground_truth.h"
#include "ground/metrics.h"
#include "sim/egress_port.h"
#include "traffic/scenarios.h"
#include "traffic/trace_gen.h"
#include "wire/telemetry.h"

namespace pq {
namespace {

struct Harness {
  explicit Harness(core::PipelineConfig pcfg, double dq_delay_ms = 0.0) {
    pcfg.dq_delay_threshold_ns =
        static_cast<Duration>(dq_delay_ms * 1'000'000.0);
    pipeline = std::make_unique<core::PrintQueuePipeline>(pcfg);
    pipeline->enable_port(0);
    control::AnalysisConfig acfg;
    analysis = std::make_unique<control::AnalysisProgram>(*pipeline, acfg);

    sim::PortConfig port_cfg;
    port_cfg.line_rate_gbps = 10.0;
    port_cfg.capacity_cells = 25000;
    port = std::make_unique<sim::EgressPort>(port_cfg);
    port->add_hook(pipeline.get());
  }

  void run(std::vector<Packet> pkts) {
    port->run(std::move(pkts));
    analysis->finalize(port->stats().last_departure + 1);
    truth = std::make_unique<ground::GroundTruth>(port->records());
  }

  std::unique_ptr<core::PrintQueuePipeline> pipeline;
  std::unique_ptr<control::AnalysisProgram> analysis;
  std::unique_ptr<sim::EgressPort> port;
  std::unique_ptr<ground::GroundTruth> truth;
};

core::PipelineConfig uw_config() {
  core::PipelineConfig cfg;
  const auto pp = traffic::paper_params(traffic::TraceKind::kUW);
  cfg.windows.m0 = pp.m0;
  cfg.windows.alpha = pp.alpha;
  cfg.windows.k = pp.k;
  cfg.windows.num_windows = pp.num_windows;
  cfg.monitor.max_depth_cells = 25000;
  return cfg;
}

std::vector<Packet> uw_with_congestion(Duration duration_ns,
                                       std::uint64_t seed) {
  traffic::PacketTraceConfig tcfg;
  tcfg.duration_ns = duration_ns;
  tcfg.seed = seed;
  return traffic::generate_uw_trace(tcfg);
}

TEST(EndToEnd, AsynchronousQueryAccuracyOnCongestedVictims) {
  // Accuracy varies with where victims land relative to checkpoint
  // boundaries, so average across several independent runs.
  double precision_sum = 0, recall_sum = 0;
  int n = 0;
  for (std::uint64_t seed : {11u, 13u, 17u}) {
    Harness h(uw_config());
    h.run(uw_with_congestion(30'000'000, seed));

    Rng rng(1);
    const auto victims = ground::sample_victims(
        h.port->records(), {{1000, 25000}}, 40, rng);
    ASSERT_GT(victims.size(), 20u) << "workload produced no deep queues";

    for (const auto& v : victims) {
      const Timestamp t1 = v.record.enq_timestamp;
      const Timestamp t2 = v.record.deq_timestamp();
      const auto est = h.analysis->query_time_windows(0, t1, t2);
      const auto gt = h.truth->direct_culprits(t1, t2);
      if (gt.empty()) continue;
      const auto pr = ground::flow_count_accuracy(est, gt);
      precision_sum += pr.precision;
      recall_sum += pr.recall;
      ++n;
    }
  }
  ASSERT_GT(n, 60);
  // The paper's UW asynchronous queries average ~0.68 precision / ~0.63
  // recall; our synthetic trace lands nearby on precision, with recall a
  // little lower (deep-window mice are unrecoverable). Require floors well
  // above chance and consistent with those bands.
  EXPECT_GT(precision_sum / n, 0.6);
  EXPECT_GT(recall_sum / n, 0.35);
}

TEST(EndToEnd, DataPlaneQueriesBeatAsynchronousQueries) {
  Harness h(uw_config(), /*dq_delay_ms=*/0.05);
  h.run(uw_with_congestion(30'000'000, 13));

  const auto& captures = h.analysis->dq_captures(0);
  ASSERT_GT(captures.size(), 3u);

  double dq_p = 0, aq_p = 0;
  int n = 0;
  for (const auto& cap : captures) {
    const Timestamp t1 = cap.notification.enq_timestamp;
    const Timestamp t2 = cap.notification.deq_timestamp;
    const auto gt = h.truth->direct_culprits(t1, t2);
    if (gt.empty()) continue;
    const auto dq = h.analysis->query_dq_capture(cap, t1, t2);
    const auto aq = h.analysis->query_time_windows(0, t1, t2);
    dq_p += ground::flow_count_accuracy(dq, gt).precision;
    aq_p += ground::flow_count_accuracy(aq, gt).precision;
    ++n;
  }
  ASSERT_GT(n, 3);
  // Data-plane queries read the freshest windows; the paper reports them
  // consistently more accurate than asynchronous queries.
  EXPECT_GE(dq_p / n + 0.02, aq_p / n);
  EXPECT_GT(dq_p / n, 0.8);
}

TEST(EndToEnd, PrintQueueBeatsFixedIntervalBaselineOffPeriodQueries) {
  core::PipelineConfig pcfg = uw_config();
  core::PrintQueuePipeline pipeline(pcfg);
  pipeline.enable_port(0);
  control::AnalysisProgram analysis(pipeline, {});

  baseline::IntervalAdapter hashpipe(
      std::make_unique<baseline::HashPipe>(
          baseline::HashPipeParams{.stages = 5, .slots_per_stage = 4096}),
      pipeline.windows().layout().set_period_ns());

  sim::PortConfig port_cfg;
  port_cfg.line_rate_gbps = 10.0;
  port_cfg.capacity_cells = 25000;
  sim::EgressPort port(port_cfg);
  port.add_hook(&pipeline);
  port.add_hook(&hashpipe);
  port.run(uw_with_congestion(30'000'000, 17));
  analysis.finalize(port.stats().last_departure + 1);
  hashpipe.finalize();
  ground::GroundTruth truth(port.records());

  Rng rng(3);
  const auto victims =
      ground::sample_victims(port.records(), {{2000, 25000}}, 50, rng);
  ASSERT_GT(victims.size(), 10u);

  double pq_f1 = 0, hp_f1 = 0;
  int n = 0;
  for (const auto& v : victims) {
    const Timestamp t1 = v.record.enq_timestamp;
    const Timestamp t2 = v.record.deq_timestamp();
    const auto gt = truth.direct_culprits(t1, t2);
    if (gt.empty()) continue;
    pq_f1 += ground::flow_count_accuracy(
                 analysis.query_time_windows(0, t1, t2), gt)
                 .f1();
    hp_f1 += ground::flow_count_accuracy(hashpipe.query(t1, t2), gt).f1();
    ++n;
  }
  ASSERT_GT(n, 10);
  EXPECT_GT(pq_f1 / n, hp_f1 / n);
}

TEST(EndToEnd, QueueMonitorImplicatesMicroburstOrigin) {
  // A probe keeps a trickle flowing; a microburst fills the queue; the
  // queue monitor's original culprits must implicate the burst flows.
  core::PipelineConfig pcfg = uw_config();
  Harness h(pcfg);

  Rng rng(5);
  traffic::MicroburstConfig mb;
  mb.start = 2'000'000;
  mb.rate_gbps = 40.0;
  mb.packets = 4000;
  mb.flows = 4;
  traffic::ProbeConfig probe;
  probe.start = 0;
  probe.duration_ns = 10'000'000;
  probe.rate_gbps = 8.0;  // keeps the queue from draining after the burst
  probe.packet_bytes = 1500;
  probe.flow_id_base = 777;

  auto pkts = traffic::merge_traces(
      {traffic::generate_microburst(mb, rng),
       traffic::generate_probe(probe)});
  h.run(std::move(pkts));

  // Query the monitor at a point well after the burst drained.
  const auto culprits = h.analysis->query_queue_monitor(0, 8'000'000);
  ASSERT_FALSE(culprits.empty());
  double burst_entries = 0;
  for (const auto& c : culprits) {
    if (c.flow.proto == 17) ++burst_entries;  // burst flows are UDP
  }
  EXPECT_GT(burst_entries / static_cast<double>(culprits.size()), 0.5);
}

TEST(EndToEnd, TelemetryPathMatchesDirectRecords) {
  // Full wire path: build evaluation frames from egress contexts, parse
  // them with the collector, and confirm the records match the simulator's.
  struct FrameTap : sim::EgressHook {
    wire::TelemetryCollector collector;
    void on_egress(const sim::EgressContext& ctx) override {
      Packet pkt;
      pkt.flow = ctx.flow;
      pkt.size_bytes = ctx.size_bytes;
      pkt.priority = ctx.priority;
      wire::TelemetryHeader tele;
      tele.egress_port = ctx.egress_port;
      tele.enq_timestamp = ctx.enq_timestamp;
      tele.deq_timedelta = ctx.deq_timedelta;
      tele.enq_qdepth = ctx.enq_qdepth;
      tele.packet_cells = ctx.packet_cells;
      collector.ingest(wire::build_eval_frame(pkt, tele));
    }
  } tap;

  sim::PortConfig port_cfg;
  sim::EgressPort port(port_cfg);
  port.add_hook(&tap);
  port.run(uw_with_congestion(1'000'000, 19));

  ASSERT_EQ(tap.collector.records().size(), port.records().size());
  EXPECT_EQ(tap.collector.malformed_count(), 0u);
  for (std::size_t i = 0; i < port.records().size(); ++i) {
    const auto& a = tap.collector.records()[i];
    const auto& b = port.records()[i];
    EXPECT_EQ(a.flow, b.flow);
    EXPECT_EQ(a.enq_timestamp, b.enq_timestamp);
    EXPECT_EQ(a.deq_timedelta, b.deq_timedelta);
    EXPECT_EQ(a.enq_qdepth, b.enq_qdepth);
  }
}

TEST(EndToEnd, NonFifoSchedulingStillYieldsAccurateDirectCulprits) {
  // Section 5: PrintQueue's structures are scheduler-agnostic. Run the
  // same pipeline behind a strict-priority queue and check accuracy.
  core::PipelineConfig pcfg = uw_config();
  core::PrintQueuePipeline pipeline(pcfg);
  pipeline.enable_port(0);
  control::AnalysisProgram analysis(pipeline, {});

  sim::PortConfig port_cfg;
  port_cfg.line_rate_gbps = 10.0;
  port_cfg.scheduler = sim::SchedulerKind::kStrictPriority;
  sim::EgressPort port(port_cfg);
  port.add_hook(&pipeline);

  // High-priority UW traffic plus a low-priority probe as victim.
  auto pkts = uw_with_congestion(10'000'000, 23);
  traffic::ProbeConfig probe;
  probe.duration_ns = 10'000'000;
  probe.rate_gbps = 0.05;
  probe.flow_id_base = 999;
  auto probe_pkts = traffic::generate_probe(probe);
  for (auto& p : probe_pkts) p.priority = 7;
  pkts = traffic::merge_traces({std::move(pkts), std::move(probe_pkts)});
  port.run(std::move(pkts));
  analysis.finalize(port.stats().last_departure + 1);
  ground::GroundTruth truth(port.records());

  double precision = 0;
  int n = 0;
  for (const auto& r : port.records()) {
    if (r.flow != make_flow(999) || r.deq_timedelta < 100'000) continue;
    const auto gt =
        truth.direct_culprits(r.enq_timestamp, r.deq_timestamp());
    if (gt.empty()) continue;
    const auto est = analysis.query_time_windows(0, r.enq_timestamp,
                                                 r.deq_timestamp());
    precision += ground::flow_count_accuracy(est, gt).precision;
    if (++n >= 20) break;
  }
  ASSERT_GT(n, 5);
  EXPECT_GT(precision / n, 0.4);
}

}  // namespace
}  // namespace pq
