// Property sweep over time-window parameterisations: for every (alpha, k,
// T) combination, the end-to-end invariants must hold — fresh-window
// queries are near-exact, estimates are finite and non-negative, the
// register banks conserve packets, and precision stays above a floor.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "common/stats.h"
#include "control/analysis_program.h"
#include "ground/ground_truth.h"
#include "ground/metrics.h"
#include "sim/egress_port.h"
#include "traffic/trace_gen.h"

namespace pq {
namespace {

struct SweepCase {
  std::uint32_t alpha, k, T;
};

class ParamSweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(ParamSweep, EndToEndInvariantsHold) {
  const auto [alpha, k, T] = GetParam();

  core::PipelineConfig cfg;
  cfg.windows.m0 = 6;
  cfg.windows.alpha = alpha;
  cfg.windows.k = k;
  cfg.windows.num_windows = T;
  cfg.monitor.max_depth_cells = 25000;
  core::PrintQueuePipeline pipeline(cfg);
  pipeline.enable_port(0);
  control::AnalysisProgram analysis(pipeline, {});

  sim::PortConfig port_cfg;
  sim::EgressPort port(port_cfg);
  port.add_hook(&pipeline);

  traffic::PacketTraceConfig tcfg;
  tcfg.duration_ns = 8'000'000;
  tcfg.seed = 1000 + alpha * 100 + k * 10 + T;
  port.run(traffic::generate_uw_trace(tcfg));
  analysis.finalize(port.stats().last_departure + 1);
  ground::GroundTruth truth(port.records());

  // Invariant 1: per-window stats conservation. Everything stored into
  // window i+1 was passed from window i.
  const auto& stats = pipeline.windows().stats();
  for (std::uint32_t i = 1; i < T; ++i) {
    EXPECT_EQ(stats.stored[i], stats.passed[i - 1]) << "window " << i;
  }
  // Invariant 2: passes + drops = evictions <= stores.
  for (std::uint32_t i = 0; i < T; ++i) {
    EXPECT_LE(stats.passed[i] + stats.dropped[i], stats.stored[i]);
  }

  // Invariant 3: sampled victim queries return finite, non-negative
  // counts, and accuracy stays above a coarse floor.
  Rng rng(3);
  const auto victims =
      ground::sample_victims(port.records(), {{500, 25000}}, 40, rng);
  OnlineStats precision;
  for (const auto& v : victims) {
    const auto est = analysis.query_time_windows(
        0, v.record.enq_timestamp, v.record.deq_timestamp());
    for (const auto& [flow, n] : est) {
      EXPECT_TRUE(std::isfinite(n));
      EXPECT_GE(n, 0.0);
    }
    const auto gt = truth.direct_culprits(v.record.enq_timestamp,
                                          v.record.deq_timestamp());
    if (gt.empty()) continue;
    precision.add(ground::flow_count_accuracy(est, gt).precision);
  }
  if (precision.count() >= 10) {
    EXPECT_GT(precision.mean(), 0.3)
        << "alpha=" << alpha << " k=" << k << " T=" << T;
  }

  // Invariant 4: coefficients are monotone non-increasing and in (0, 1].
  const auto coeffs = analysis.coefficients(0);
  for (std::uint32_t i = 0; i < T; ++i) {
    EXPECT_GT(coeffs.coefficient(i), 0.0);
    EXPECT_LE(coeffs.coefficient(i), 1.0);
    if (i > 0) {
      EXPECT_LE(coeffs.coefficient(i), coeffs.coefficient(i - 1));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllConfigs, ParamSweep,
    ::testing::Values(SweepCase{1, 10, 2}, SweepCase{1, 10, 4},
                      SweepCase{1, 12, 3}, SweepCase{2, 10, 3},
                      SweepCase{2, 12, 4}, SweepCase{2, 11, 5},
                      SweepCase{3, 10, 3}, SweepCase{3, 12, 4},
                      SweepCase{4, 9, 3}),
    [](const ::testing::TestParamInfo<SweepCase>& tpi) {
      // += rather than operator+ chains: GCC 12 -Wrestrict false positive.
      std::string n = "a";
      n += std::to_string(tpi.param.alpha);
      n += "_k";
      n += std::to_string(tpi.param.k);
      n += "_T";
      n += std::to_string(tpi.param.T);
      return n;
    });

}  // namespace
}  // namespace pq
