// Differential proof for the batched hot path (docs/ARCHITECTURE.md §10):
// draining shards in PacketBatch chunks of ANY size must be byte-identical
// to the scalar per-packet path — same register state in all four banks,
// same query answers, same merged DQ notification stream, same fault
// schedule, same health counters, same deterministic metrics view. The
// scalar run (batch 1, single thread) is the oracle; batch sizes 3 (odd,
// never aligned with chunk boundaries), 64 and 1024 (larger than many
// shard backlogs, so final partial flushes are exercised) run against it
// across thread counts 1, 2 and 8, with and without an active FaultPlan.
#include <gtest/gtest.h>

#include "common/simd/dispatch.h"
#include "sharded_harness.h"

namespace pq {
namespace {

using harness::run_once;
using harness::RunResult;
using harness::workload;

/// SIMD dispatch levels the batched runs are swept across. The oracle
/// (batch 1) absorbs packet-at-a-time and never enters a SIMD kernel, so
/// one oracle serves every level; on a host without AVX2 the sweep is just
/// {kScalar}.
std::vector<simd::Level> sweep_levels() {
  std::vector<simd::Level> v{simd::Level::kScalar};
  if (simd::supported(simd::Level::kAvx2)) v.push_back(simd::Level::kAvx2);
  return v;
}

class ScopedLevel {
 public:
  explicit ScopedLevel(simd::Level level) { simd::set_active_level(level); }
  ~ScopedLevel() { simd::configure(); }
};

class BatchDifferential : public ::testing::TestWithParam<bool> {};

TEST_P(BatchDifferential, ByteIdenticalToScalarOracle) {
  const bool with_faults = GetParam();
  const auto packets = workload();
  const RunResult oracle = run_once(packets, with_faults, 1, 1);

  ASSERT_GT(oracle.packets_seen, 0u);
  ASSERT_FALSE(oracle.registers.empty());
  // The workload must exercise the interesting per-packet points, or
  // equality proves nothing about them: data-plane query triggers (which
  // lock banks and split batched runs) and, when faults are on, a
  // non-empty injected schedule.
  EXPECT_GT(oracle.dq_fired, 0u);
  if (with_faults) {
    ASSERT_FALSE(oracle.fault_schedule.empty());
    EXPECT_GT(oracle.health.torn_reads_detected, 0u);
  }

  ASSERT_FALSE(oracle.archive_bytes.empty());

  for (const simd::Level level : sweep_levels()) {
    ScopedLevel scope(level);
  for (const std::uint32_t batch : {3u, 64u, 256u, 1024u}) {
    for (const unsigned threads : {1u, 2u, 8u}) {
      const RunResult got = run_once(packets, with_faults, threads, batch);
      const auto label = ::testing::Message()
                         << "simd=" << simd::to_string(level)
                         << " batch=" << batch << " threads=" << threads;
      EXPECT_EQ(oracle.registers, got.registers) << label;
      EXPECT_EQ(oracle.answers, got.answers) << label;
      EXPECT_EQ(oracle.fault_schedule, got.fault_schedule) << label;
      EXPECT_EQ(oracle.dq_stream, got.dq_stream) << label;
      EXPECT_EQ(oracle.health, got.health) << label;
      EXPECT_EQ(oracle.packets_seen, got.packets_seen) << label;
      EXPECT_EQ(oracle.dq_fired, got.dq_fired) << label;
      EXPECT_EQ(oracle.metrics_json, got.metrics_json) << label;
      EXPECT_EQ(oracle.archive_bytes, got.archive_bytes) << label;
    }
  }
  }
}

INSTANTIATE_TEST_SUITE_P(WithAndWithoutFaults, BatchDifferential,
                         ::testing::Values(false, true),
                         [](const ::testing::TestParamInfo<bool>& tpi) {
                           return tpi.param ? "FaultPlan" : "Clean";
                         });

// Batched drains on 16 genuinely concurrent workers (16 ports) under an
// active FaultPlan — the batch counterpart of the determinism suite's wide
// sweep. Odd batch 3 exercises misaligned epoch-boundary flushes; 1024 is
// larger than many shard backlogs.
TEST(BatchDifferential, SixteenThreadsWideWorkload) {
  const auto packets = workload(harness::kPortsWide);
  harness::RunSpec oracle_spec;
  oracle_spec.with_faults = true;
  oracle_spec.ports = harness::kPortsWide;
  const RunResult oracle = run_once(packets, oracle_spec);
  ASSERT_GT(oracle.packets_seen, 0u);
  ASSERT_FALSE(oracle.fault_schedule.empty());
  EXPECT_GT(oracle.dq_fired, 0u);

  for (const simd::Level level : sweep_levels()) {
    ScopedLevel scope(level);
  for (const std::uint32_t batch : {3u, 1024u}) {
    harness::RunSpec spec = oracle_spec;
    spec.threads = 16;
    spec.batch = batch;
    const RunResult got = run_once(packets, spec);
    const auto label = ::testing::Message()
                       << "simd=" << simd::to_string(level)
                       << " batch=" << batch;
    EXPECT_EQ(oracle.registers, got.registers) << label;
    EXPECT_EQ(oracle.answers, got.answers) << label;
    EXPECT_EQ(oracle.fault_schedule, got.fault_schedule) << label;
    EXPECT_EQ(oracle.dq_stream, got.dq_stream) << label;
    EXPECT_EQ(oracle.health, got.health) << label;
    EXPECT_EQ(oracle.packets_seen, got.packets_seen) << label;
    EXPECT_EQ(oracle.dq_fired, got.dq_fired) << label;
    EXPECT_EQ(oracle.metrics_json, got.metrics_json) << label;
    EXPECT_EQ(oracle.archive_bytes, got.archive_bytes) << label;
  }
  }
}

}  // namespace
}  // namespace pq
