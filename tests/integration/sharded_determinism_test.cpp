// The determinism contract of the port-sharded engine (docs/ARCHITECTURE.md):
// a multi-port run produces byte-identical pipeline register state, query
// answers, merged notification streams, health counters and fault schedules
// for ANY thread count — 1, 2 and 8 are exercised here, with and without an
// active FaultPlan.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "control/metrics_export.h"
#include "control/sharded_analysis.h"
#include "sim/switch.h"
#include "traffic/distributions.h"
#include "traffic/trace_gen.h"
#include "wire/bytes.h"

namespace pq {
namespace {

constexpr std::uint32_t kPorts = 8;

std::vector<Packet> workload() {
  std::vector<std::vector<Packet>> parts;
  for (std::uint32_t p = 0; p < kPorts; ++p) {
    traffic::FlowTraceConfig tcfg;
    tcfg.flow_sizes = &traffic::web_search_flow_sizes();
    tcfg.duration_ns = 6'000'000;  // enough for several polls at m0=10,k=9
    tcfg.seed = 1000 + p;
    tcfg.flow_id_base = p * 1'000'000;
    auto pkts = traffic::generate_flow_trace(tcfg);
    for (auto& pk : pkts) pk.egress_hint = p;
    parts.push_back(std::move(pkts));
  }
  return traffic::merge_traces(std::move(parts));
}

control::ShardedSystem::Config system_config(bool with_faults) {
  control::ShardedSystem::Config cfg;
  cfg.ports.resize(kPorts);
  for (std::uint32_t p = 0; p < kPorts; ++p) {
    cfg.ports[p].port_id = p;
    cfg.ports[p].collect_depth_series = false;
  }
  cfg.pipeline.windows.m0 = 10;
  cfg.pipeline.windows.alpha = 1;
  cfg.pipeline.windows.k = 9;
  cfg.pipeline.windows.num_windows = 4;
  cfg.pipeline.monitor.max_depth_cells = 25000;
  cfg.pipeline.monitor.granularity_cells = 8;
  cfg.pipeline.dq_depth_threshold_cells = 400;
  if (with_faults) {
    faults::FaultPlanConfig f;
    f.seed = 77;
    f.torn_reads.probability = 0.25;
    f.trigger_storm.probability = 0.001;
    f.trigger_storm.forced_depth_cells = 500;
    f.clock_skew.max_abs_skew_ns = 2000;
    cfg.faults = f;
  }
  return cfg;
}

void encode_windows(std::vector<std::uint8_t>& buf,
                    const core::TimeWindowSet& w) {
  for (std::uint32_t bank = 0; bank < 4; ++bank) {
    const auto state = w.read_bank(bank, 0);
    for (const auto& window : state) {
      for (const auto& cell : window) {
        wire::put_u64(buf, cell.occupied ? flow_signature(cell.flow) : 0);
        wire::put_u64(buf, cell.cycle_id);
        wire::put_u8(buf, cell.occupied ? 1 : 0);
      }
    }
  }
}

void encode_monitor(std::vector<std::uint8_t>& buf, const core::QueueMonitor& m,
                    std::uint32_t partitions) {
  for (std::uint32_t bank = 0; bank < 4; ++bank) {
    for (std::uint32_t part = 0; part < partitions; ++part) {
      const auto state = m.read_bank(bank, part);
      wire::put_u32(buf, state.top);
      for (const auto& e : state.entries) {
        wire::put_u64(buf, e.inc.valid ? flow_signature(e.inc.flow) : 0);
        wire::put_u64(buf, e.inc.seq);
        wire::put_u64(buf, e.dec.valid ? flow_signature(e.dec.flow) : 0);
        wire::put_u64(buf, e.dec.seq);
      }
    }
  }
}

/// Everything the contract promises, flattened to comparable bytes/values.
struct RunResult {
  std::vector<std::uint8_t> registers;  ///< all shards, all banks
  std::vector<std::pair<std::uint64_t, double>> answers;  ///< sorted counts
  std::vector<std::uint8_t> fault_schedule;
  std::vector<std::uint64_t> dq_stream;  ///< (prefix, deq_ts) pairs flattened
  control::HealthStats health;
  std::uint64_t packets_seen = 0;
  std::uint64_t dq_fired = 0;
  /// Merged pq::obs registry in its deterministic serialization view
  /// (IncludeTimings::kNo) — must be byte-identical across thread counts.
  std::string metrics_json;
};

RunResult run_once(const std::vector<Packet>& packets, bool with_faults,
                   unsigned threads) {
  control::ShardedSystem sys(system_config(with_faults));
  sys.run(packets, threads);

  RunResult r;
  for (std::uint32_t s = 0; s < sys.pipeline().num_shards(); ++s) {
    auto& pipe = sys.pipeline().shard(s).pipeline();
    encode_windows(r.registers, pipe.windows());
    encode_monitor(r.registers, pipe.monitor(),
                   pipe.monitor().port_partitions());
  }

  // A mid-trace interval query and a point query on every shard.
  for (std::uint32_t s = 0; s < sys.pipeline().num_shards(); ++s) {
    const auto counts =
        sys.analysis().query_time_windows(s, 2'000'000, 4'000'000);
    std::vector<std::pair<std::uint64_t, double>> sorted;
    for (const auto& [flow, n] : counts) {
      sorted.emplace_back(flow_signature(flow), n);
    }
    std::sort(sorted.begin(), sorted.end());
    r.answers.insert(r.answers.end(), sorted.begin(), sorted.end());
    for (const auto& c : sys.analysis().query_queue_monitor(s, 3'000'000)) {
      r.answers.emplace_back(flow_signature(c.flow),
                             static_cast<double>(c.seq));
    }
  }

  for (const auto& d : sys.analysis().merged_dq_notifications()) {
    r.dq_stream.push_back(d.global_prefix);
    r.dq_stream.push_back(d.notification.deq_timestamp);
    r.dq_stream.push_back(flow_signature(d.notification.victim_flow));
  }
  if (sys.faults() != nullptr) {
    r.fault_schedule = sys.faults()->serialize_merged_schedule();
  }
  r.health = sys.analysis().health();
  r.packets_seen = sys.pipeline().packets_seen();
  r.dq_fired = sys.pipeline().dq_triggers_fired();
  r.metrics_json = control::collect_system_metrics(sys).to_json(
      obs::IncludeTimings::kNo);
  return r;
}

class ShardedDeterminism : public ::testing::TestWithParam<bool> {};

TEST_P(ShardedDeterminism, ByteIdenticalAcrossThreadCounts) {
  const bool with_faults = GetParam();
  const auto packets = workload();
  const RunResult base = run_once(packets, with_faults, 1);

  ASSERT_GT(base.packets_seen, 0u);
  ASSERT_FALSE(base.registers.empty());
  if (with_faults) {
    // The plan must actually have fired faults for this test to mean much.
    ASSERT_FALSE(base.fault_schedule.empty());
    EXPECT_GT(base.health.torn_reads_detected, 0u);
  }
  EXPECT_GT(base.dq_fired, 0u);

  for (const unsigned threads : {2u, 8u}) {
    const RunResult other = run_once(packets, with_faults, threads);
    EXPECT_EQ(base.registers, other.registers) << "threads=" << threads;
    EXPECT_EQ(base.answers, other.answers) << "threads=" << threads;
    EXPECT_EQ(base.fault_schedule, other.fault_schedule)
        << "threads=" << threads;
    EXPECT_EQ(base.dq_stream, other.dq_stream) << "threads=" << threads;
    EXPECT_EQ(base.health, other.health) << "threads=" << threads;
    EXPECT_EQ(base.packets_seen, other.packets_seen) << "threads=" << threads;
    EXPECT_EQ(base.dq_fired, other.dq_fired) << "threads=" << threads;
    EXPECT_EQ(base.metrics_json, other.metrics_json) << "threads=" << threads;
  }
}

INSTANTIATE_TEST_SUITE_P(WithAndWithoutFaults, ShardedDeterminism,
                         ::testing::Values(false, true),
                         [](const ::testing::TestParamInfo<bool>& tpi) {
                           return tpi.param ? "FaultPlan" : "Clean";
                         });

// The sharded stack and the monolithic pipeline answer the same queries on
// the same per-port traffic: sanity that sharding did not change what a
// shard computes (same windows, same coefficients, same filtering).
TEST(ShardedDeterminism, ShardMatchesMonolithicSinglePort) {
  traffic::FlowTraceConfig tcfg;
  tcfg.flow_sizes = &traffic::web_search_flow_sizes();
  tcfg.duration_ns = 6'000'000;
  tcfg.seed = 5;
  auto pkts = traffic::generate_flow_trace(tcfg);
  for (auto& pk : pkts) pk.egress_hint = 0;

  // Monolithic: one pipeline, one port, via the Switch facade.
  core::PipelineConfig pcfg = system_config(false).pipeline;
  pcfg.dq_depth_threshold_cells = 0;  // compare the polling path only
  core::PrintQueuePipeline mono(pcfg);
  mono.enable_port(0);
  control::AnalysisProgram mono_ap(mono, {});
  sim::Switch sw({sim::PortConfig{}});
  sw.add_hook(0, &mono);
  sw.run(pkts);
  mono_ap.finalize(sw.port(0).stats().last_departure + 1);

  // Sharded: same config, one shard, parallel path.
  auto scfg = system_config(false);
  scfg.ports.resize(1);
  scfg.pipeline.dq_depth_threshold_cells = 0;  // match mono (no triggers)
  control::ShardedSystem sys(scfg);
  sys.run(pkts, 4);

  const auto a = mono_ap.query_time_windows(0, 2'000'000, 4'000'000);
  const auto b = sys.analysis().query_time_windows(0, 2'000'000, 4'000'000);
  ASSERT_EQ(a.size(), b.size());
  for (const auto& [flow, n] : a) {
    auto it = b.find(flow);
    ASSERT_NE(it, b.end());
    EXPECT_DOUBLE_EQ(n, it->second);
  }
}

}  // namespace
}  // namespace pq
