// The determinism contract of the port-sharded engine (docs/ARCHITECTURE.md):
// a multi-port run produces byte-identical pipeline register state, query
// answers, merged notification streams, health counters and fault schedules
// for ANY thread count — 1, 2 and 8 are exercised here, with and without an
// active FaultPlan. The workload, configuration, RunResult shape and
// encoders live in sharded_harness.h, shared with the batch-size sweep in
// batch_differential_test.cpp.
#include <gtest/gtest.h>

#include "control/analysis_program.h"
#include "sim/switch.h"
#include "sharded_harness.h"

namespace pq {
namespace {

using harness::run_once;
using harness::RunResult;
using harness::system_config;
using harness::workload;

class ShardedDeterminism : public ::testing::TestWithParam<bool> {};

TEST_P(ShardedDeterminism, ByteIdenticalAcrossThreadCounts) {
  const bool with_faults = GetParam();
  const auto packets = workload();
  const RunResult base = run_once(packets, with_faults, 1);

  ASSERT_GT(base.packets_seen, 0u);
  ASSERT_FALSE(base.registers.empty());
  if (with_faults) {
    // The plan must actually have fired faults for this test to mean much.
    ASSERT_FALSE(base.fault_schedule.empty());
    EXPECT_GT(base.health.torn_reads_detected, 0u);
  }
  EXPECT_GT(base.dq_fired, 0u);
  ASSERT_FALSE(base.archive_bytes.empty());

  for (const unsigned threads : {2u, 8u}) {
    const RunResult other = run_once(packets, with_faults, threads);
    EXPECT_EQ(base.registers, other.registers) << "threads=" << threads;
    EXPECT_EQ(base.answers, other.answers) << "threads=" << threads;
    EXPECT_EQ(base.fault_schedule, other.fault_schedule)
        << "threads=" << threads;
    EXPECT_EQ(base.dq_stream, other.dq_stream) << "threads=" << threads;
    EXPECT_EQ(base.health, other.health) << "threads=" << threads;
    EXPECT_EQ(base.packets_seen, other.packets_seen) << "threads=" << threads;
    EXPECT_EQ(base.dq_fired, other.dq_fired) << "threads=" << threads;
    EXPECT_EQ(base.metrics_json, other.metrics_json) << "threads=" << threads;
    EXPECT_EQ(base.archive_bytes, other.archive_bytes)
        << "threads=" << threads;
  }
}

INSTANTIATE_TEST_SUITE_P(WithAndWithoutFaults, ShardedDeterminism,
                         ::testing::Values(false, true),
                         [](const ::testing::TestParamInfo<bool>& tpi) {
                           return tpi.param ? "FaultPlan" : "Clean";
                         });

void expect_equal(const RunResult& base, const RunResult& other,
                  const ::testing::Message& label) {
  EXPECT_EQ(base.registers, other.registers) << label;
  EXPECT_EQ(base.answers, other.answers) << label;
  EXPECT_EQ(base.fault_schedule, other.fault_schedule) << label;
  EXPECT_EQ(base.dq_stream, other.dq_stream) << label;
  EXPECT_EQ(base.health, other.health) << label;
  EXPECT_EQ(base.packets_seen, other.packets_seen) << label;
  EXPECT_EQ(base.dq_fired, other.dq_fired) << label;
  EXPECT_EQ(base.metrics_json, other.metrics_json) << label;
  EXPECT_EQ(base.archive_bytes, other.archive_bytes) << label;
}

// Sixteen genuinely concurrent workers (16 ports, so no thread clamps away)
// under an active FaultPlan, with and without pinning, against the scalar
// single-thread oracle — the widest sweep in the suite.
TEST(ShardedDeterminism, SixteenThreadsWideWorkload) {
  const auto packets = workload(harness::kPortsWide);
  harness::RunSpec oracle_spec;
  oracle_spec.with_faults = true;
  oracle_spec.ports = harness::kPortsWide;
  const RunResult oracle = run_once(packets, oracle_spec);

  ASSERT_GT(oracle.packets_seen, 0u);
  ASSERT_FALSE(oracle.fault_schedule.empty());
  EXPECT_GT(oracle.dq_fired, 0u);
  EXPECT_GT(oracle.health.torn_reads_detected, 0u);

  for (const unsigned threads : {2u, 8u, 16u}) {
    for (const std::uint32_t batch : {1u, 256u}) {
      harness::RunSpec spec = oracle_spec;
      spec.threads = threads;
      spec.batch = batch;
      spec.pin_threads = threads == 16;  // pinning must be a pure no-op
      expect_equal(oracle, run_once(packets, spec),
                   ::testing::Message()
                       << "threads=" << threads << " batch=" << batch);
    }
  }
}

// The epoch-batched handoff is a scheduling change, not a semantic one: any
// epoch size (tiny and relatively prime to everything, the 4 ms default,
// absurdly large) must be byte-identical to the legacy end-of-run merge
// barrier (epoch_ns = 0), at any thread count, under an active FaultPlan.
TEST(ShardedDeterminism, EpochHandoffMatchesLegacyMerge) {
  const auto packets = workload();
  harness::RunSpec legacy;
  legacy.with_faults = true;
  legacy.epoch_ns = 0;
  const RunResult oracle = run_once(packets, legacy);
  ASSERT_GT(oracle.packets_seen, 0u);
  EXPECT_GT(oracle.dq_fired, 0u);

  for (const Duration epoch : {Duration{100'003}, Duration{4'000'000},
                               Duration{1} << 40}) {
    for (const unsigned threads : {1u, 8u}) {
      harness::RunSpec spec;
      spec.with_faults = true;
      spec.threads = threads;
      spec.batch = 64;
      spec.epoch_ns = epoch;
      expect_equal(oracle, run_once(packets, spec),
                   ::testing::Message()
                       << "epoch_ns=" << epoch << " threads=" << threads);
    }
  }
}

// The sharded stack and the monolithic pipeline answer the same queries on
// the same per-port traffic: sanity that sharding did not change what a
// shard computes (same windows, same coefficients, same filtering).
TEST(ShardedDeterminism, ShardMatchesMonolithicSinglePort) {
  traffic::FlowTraceConfig tcfg;
  tcfg.flow_sizes = &traffic::web_search_flow_sizes();
  tcfg.duration_ns = 6'000'000;
  tcfg.seed = 5;
  auto pkts = traffic::generate_flow_trace(tcfg);
  for (auto& pk : pkts) pk.egress_hint = 0;

  // Monolithic: one pipeline, one port, via the Switch facade.
  core::PipelineConfig pcfg = system_config(false).pipeline;
  pcfg.dq_depth_threshold_cells = 0;  // compare the polling path only
  core::PrintQueuePipeline mono(pcfg);
  mono.enable_port(0);
  control::AnalysisProgram mono_ap(mono, {});
  sim::Switch sw({sim::PortConfig{}});
  sw.add_hook(0, &mono);
  sw.run(pkts);
  mono_ap.finalize(sw.port(0).stats().last_departure + 1);

  // Sharded: same config, one shard, parallel path.
  auto scfg = system_config(false);
  scfg.ports.resize(1);
  scfg.pipeline.dq_depth_threshold_cells = 0;  // match mono (no triggers)
  control::ShardedSystem sys(scfg);
  sys.run(pkts, 4);

  const auto a = mono_ap.query_time_windows(0, 2'000'000, 4'000'000);
  const auto b = sys.analysis().query_time_windows(0, 2'000'000, 4'000'000);
  ASSERT_EQ(a.size(), b.size());
  for (const auto& [flow, n] : a) {
    auto it = b.find(flow);
    ASSERT_NE(it, b.end());
    EXPECT_DOUBLE_EQ(n, it->second);
  }
}

}  // namespace
}  // namespace pq
