// End-to-end 32-bit clock wrap: the full pipeline (time windows +
// analysis-program queries) run on traffic whose dequeue timestamps cross
// the 2^32 ns boundary must produce *identical* per-flow estimates to the
// same relative traffic far from the boundary — provided the two base
// offsets are congruent modulo every structural boundary (the deepest
// window's cell-period-times-ring alignment), which makes cell indices and
// cycle deltas line up exactly.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "control/analysis_program.h"
#include "sim/egress_port.h"

namespace pq {
namespace {

core::PipelineConfig wrap_config(bool wrap) {
  core::PipelineConfig cfg;
  cfg.windows.m0 = 4;   // alignment: 2^(m0 + alpha*(T-1) + k) = 2^12
  cfg.windows.alpha = 1;
  cfg.windows.k = 6;
  cfg.windows.num_windows = 3;
  cfg.windows.wrap32 = wrap;
  cfg.monitor.max_depth_cells = 25000;
  return cfg;
}

/// Relative arrivals of a deterministic multi-flow stream (~100 us).
std::vector<std::pair<FlowId, Duration>> relative_stream() {
  std::vector<std::pair<FlowId, Duration>> out;
  Rng rng(17);
  Duration t = 0;
  for (int i = 0; i < 4000; ++i) {
    t += 16 + rng.uniform_below(24);
    out.push_back({make_flow(static_cast<std::uint32_t>(i % 9)), t});
  }
  return out;
}

struct WrapRun {
  explicit WrapRun(Timestamp base, bool wrap)
      : pipeline(wrap_config(wrap)), analysis(pipeline, acfg()) {
    pipeline.enable_port(0);
    for (const auto& [flow, rel] : relative_stream()) {
      sim::EgressContext ctx;
      ctx.flow = flow;
      ctx.egress_port = 0;
      ctx.size_bytes = 80;
      ctx.packet_cells = 1;
      ctx.enq_qdepth = 3;  // keep the gap EWMA active
      ctx.enq_timestamp = base + rel;
      ctx.deq_timedelta = 0;
      pipeline.on_egress(ctx);
      last = base + rel;
    }
    analysis.finalize(last + 1);
  }
  static control::AnalysisConfig acfg() {
    control::AnalysisConfig a;
    a.z0_override = 0.8;
    // One checkpoint at the end of the run: periodic flips would land at
    // different stream positions for the two bases (the poll grid is
    // anchored at absolute time), which is irrelevant to what this test
    // verifies.
    a.poll_period_ns = 3'600'000'000'000ull;
    return a;
  }
  core::PrintQueuePipeline pipeline;
  control::AnalysisProgram analysis;
  Timestamp last = 0;
};

TEST(Wrap32EndToEnd, QueriesAcrossTheWrapMatchUnwrappedRun) {
  // Base A sits far from any wrap; base B places the stream across 2^32.
  // Both are multiples of 2^12, the coarsest structural boundary.
  const Timestamp base_a = 1ull << 20;
  const Timestamp base_b = (1ull << 32) - (12ull << 12);  // wraps ~49 us in

  WrapRun a(base_a, /*wrap=*/false);
  WrapRun b(base_b, /*wrap=*/true);

  // Compare several aligned query intervals, including ones that straddle
  // the wrap instant in run B.
  const std::vector<std::pair<Duration, Duration>> intervals = {
      {0, 40'000},          // before the wrap in B
      {40'000, 60'000},     // straddles it (wrap at ~49.2 us relative)
      {48'000, 52'000},     // tight around it
      {60'000, 100'000},    // after it
      {0, 100'000},         // everything
  };
  for (const auto& [q1, q2] : intervals) {
    const auto ca = a.analysis.query_time_windows(0, base_a + q1,
                                                  base_a + q2);
    const auto cb = b.analysis.query_time_windows(0, base_b + q1,
                                                  base_b + q2);
    ASSERT_EQ(ca.size(), cb.size()) << "interval [" << q1 << "," << q2 << ")";
    for (const auto& [flow, n] : ca) {
      ASSERT_TRUE(cb.contains(flow)) << to_string(flow);
      EXPECT_NEAR(cb.at(flow), n, 1e-6)
          << to_string(flow) << " in [" << q1 << "," << q2 << ")";
    }
  }
}

TEST(Wrap32EndToEnd, RegisterContentsMatchModuloWrap) {
  const Timestamp base_a = 1ull << 20;
  const Timestamp base_b = (1ull << 32) - (12ull << 12);
  WrapRun a(base_a, false);
  WrapRun b(base_b, true);
  // Same flows land in the same cells of every window (cycle IDs differ by
  // the base offset and the wrap, but occupancy and flows match).
  for (std::uint32_t w = 0; w < 3; ++w) {
    const auto sa = a.pipeline.windows().read_bank(
        a.pipeline.windows().active_bank(), 0);
    const auto sb = b.pipeline.windows().read_bank(
        b.pipeline.windows().active_bank(), 0);
    for (std::uint64_t j = 0; j < sa[w].size(); ++j) {
      EXPECT_EQ(sa[w][j].occupied, sb[w][j].occupied)
          << "window " << w << " cell " << j;
      if (sa[w][j].occupied && sb[w][j].occupied) {
        EXPECT_EQ(sa[w][j].flow, sb[w][j].flow)
            << "window " << w << " cell " << j;
      }
    }
  }
}

}  // namespace
}  // namespace pq
