// End-to-end check that the pq::obs export path reports the truth: totals
// in the merged registry (what `pq_replay --metrics-out` and perf_smoke
// serialize) must equal independently computed ground truth from the
// workload and the engine's own per-port statistics.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "control/metrics_export.h"
#include "control/sharded_analysis.h"
#include "traffic/distributions.h"
#include "traffic/trace_gen.h"

namespace pq {
namespace {

constexpr std::uint32_t kPorts = 4;

std::vector<Packet> workload() {
  std::vector<std::vector<Packet>> parts;
  for (std::uint32_t p = 0; p < kPorts; ++p) {
    traffic::FlowTraceConfig tcfg;
    tcfg.flow_sizes = &traffic::web_search_flow_sizes();
    tcfg.duration_ns = 5'000'000;
    tcfg.seed = 900 + p;
    tcfg.flow_id_base = p * 1'000'000;
    auto pkts = traffic::generate_flow_trace(tcfg);
    for (auto& pk : pkts) pk.egress_hint = p;
    parts.push_back(std::move(pkts));
  }
  return traffic::merge_traces(std::move(parts));
}

control::ShardedSystem::Config system_config() {
  control::ShardedSystem::Config cfg;
  cfg.ports.resize(kPorts);
  for (std::uint32_t p = 0; p < kPorts; ++p) {
    cfg.ports[p].port_id = p;
    cfg.ports[p].collect_depth_series = false;
  }
  cfg.pipeline.windows.m0 = 10;
  cfg.pipeline.windows.alpha = 2;
  cfg.pipeline.windows.k = 10;
  cfg.pipeline.windows.num_windows = 4;
  cfg.pipeline.monitor.max_depth_cells = 25000;
  cfg.pipeline.monitor.granularity_cells = 8;
  cfg.pipeline.dq_depth_threshold_cells = 400;
  return cfg;
}

#if PQ_METRICS_ENABLED

TEST(MetricsIntegration, TotalsMatchTraceGroundTruth) {
  const auto packets = workload();
  control::ShardedSystem sys(system_config());
  sys.run(packets, 2);

  // Ground truth straight from the engine's per-port statistics, summed by
  // hand — the same numbers the trace itself pins down (every offered
  // packet is either enqueued or tail-dropped; a drained queue dequeues
  // exactly what it enqueued).
  std::uint64_t enq = 0, deq = 0, drop = 0, bytes = 0;
  std::uint64_t peak = 0;
  for (std::uint32_t p = 0; p < sys.engine().num_ports(); ++p) {
    const sim::PortStats& s = sys.engine().port(p).stats();
    enq += s.enqueued;
    deq += s.dequeued;
    drop += s.dropped;
    bytes += s.bytes_sent;
    peak = std::max<std::uint64_t>(peak, s.peak_depth_cells);
  }
  ASSERT_EQ(enq + drop, packets.size());
  ASSERT_EQ(deq, enq);  // fully drained

  const obs::MetricsRegistry reg = control::collect_system_metrics(sys);
  EXPECT_EQ(reg.counter_value("pq_sim_packets_enqueued_total"), enq);
  EXPECT_EQ(reg.counter_value("pq_sim_packets_dequeued_total"), deq);
  EXPECT_EQ(reg.counter_value("pq_sim_packets_dropped_total"), drop);
  EXPECT_EQ(reg.counter_value("pq_sim_bytes_sent_total"), bytes);
  EXPECT_EQ(reg.gauge_value("pq_sim_queue_depth_peak_cells"), peak);

  // The data-plane stage sees exactly the dequeued stream.
  EXPECT_EQ(reg.counter_value("pq_core_packets_seen_total"), deq);
  EXPECT_EQ(reg.counter_value("pq_core_packets_seen_total") +
                reg.counter_value("pq_sim_packets_dropped_total"),
            packets.size());

  // Register-bank touches decompose exactly into their two sources.
  EXPECT_EQ(reg.counter_value("pq_core_register_bank_touches_total"),
            reg.counter_value("pq_core_window_cells_stored_total") +
                reg.counter_value("pq_core_monitor_updates_total"));
  // Every dequeued packet probes the queue monitor once.
  EXPECT_EQ(reg.counter_value("pq_core_monitor_updates_total"), deq);

  // What --metrics-out writes is this registry's JSON; the round trip must
  // preserve the ground-truth totals bit for bit.
  const std::string json = reg.to_json();
  const obs::MetricsRegistry back = obs::MetricsRegistry::from_json(json);
  EXPECT_EQ(back.counter_value("pq_sim_packets_enqueued_total"), enq);
  EXPECT_EQ(back.counter_value("pq_sim_packets_dropped_total"), drop);
  EXPECT_EQ(back.to_json(), json);
}

TEST(MetricsIntegration, ReplayCollectorMatchesPipelineCounters) {
  const auto packets = workload();
  control::ShardedSystem sys(system_config());
  sys.run(packets, 2);

  // collect_replay_metrics is the pq_replay --metrics-out path: pipeline +
  // analysis only (no sim layer). Its core totals must agree with the
  // system-wide collector.
  const obs::MetricsRegistry replay =
      control::collect_replay_metrics(sys.pipeline(), sys.analysis());
  const obs::MetricsRegistry full = control::collect_system_metrics(sys);
  EXPECT_EQ(replay.counter_value("pq_core_packets_seen_total"),
            full.counter_value("pq_core_packets_seen_total"));
  EXPECT_EQ(replay.counter_value("pq_core_window_cells_stored_total"),
            full.counter_value("pq_core_window_cells_stored_total"));
  EXPECT_EQ(replay.counter_value("pq_control_polls_total"),
            full.counter_value("pq_control_polls_total"));
  EXPECT_FALSE(replay.contains("pq_sim_packets_enqueued_total"));
}

#else  // !PQ_METRICS_ENABLED

TEST(MetricsIntegration, OffBuildSerializesEmptyRegistry) {
  const auto packets = workload();
  control::ShardedSystem sys(system_config());
  sys.run(packets, 2);
  const auto reg = control::collect_system_metrics(sys);
  EXPECT_EQ(reg.to_json(), "{\"metrics\":[]}\n");
}

#endif  // PQ_METRICS_ENABLED

}  // namespace
}  // namespace pq
