// Shared harness for the sharded-stack equivalence tests: one workload, one
// system configuration, and one flattened RunResult so every test that
// claims "byte-identical" compares the same, complete surface — pipeline
// register state across all banks, query answers, merged DQ notification
// and fault streams, health counters, and the deterministic metrics view.
//
// sharded_determinism_test.cpp sweeps thread counts with this harness;
// batch_differential_test.cpp sweeps batch sizes. New equivalence
// dimensions should extend run_once() rather than fork the encoders, so a
// field added to RunResult strengthens every sweep at once.
#pragma once

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "control/metrics_export.h"
#include "control/sharded_analysis.h"
#include "store/archive.h"
#include "store/archive_reader.h"
#include "traffic/distributions.h"
#include "traffic/trace_gen.h"
#include "wire/bytes.h"

namespace pq::harness {

constexpr std::uint32_t kPorts = 8;
/// Wide variant: enough shards that a 16-thread sweep actually runs 16
/// concurrent workers (threads clamp to the port count).
constexpr std::uint32_t kPortsWide = 16;

inline std::vector<Packet> workload(std::uint32_t ports = kPorts) {
  std::vector<std::vector<Packet>> parts;
  for (std::uint32_t p = 0; p < ports; ++p) {
    traffic::FlowTraceConfig tcfg;
    tcfg.flow_sizes = &traffic::web_search_flow_sizes();
    tcfg.duration_ns = 6'000'000;  // enough for several polls at m0=10,k=9
    tcfg.seed = 1000 + p;
    tcfg.flow_id_base = p * 1'000'000;
    auto pkts = traffic::generate_flow_trace(tcfg);
    for (auto& pk : pkts) pk.egress_hint = p;
    parts.push_back(std::move(pkts));
  }
  return traffic::merge_traces(std::move(parts));
}

inline control::ShardedSystem::Config system_config(
    bool with_faults, std::uint32_t ports = kPorts) {
  control::ShardedSystem::Config cfg;
  cfg.ports.resize(ports);
  for (std::uint32_t p = 0; p < ports; ++p) {
    cfg.ports[p].port_id = p;
    cfg.ports[p].collect_depth_series = false;
  }
  cfg.pipeline.windows.m0 = 10;
  cfg.pipeline.windows.alpha = 1;
  cfg.pipeline.windows.k = 9;
  cfg.pipeline.windows.num_windows = 4;
  cfg.pipeline.monitor.max_depth_cells = 25000;
  cfg.pipeline.monitor.granularity_cells = 8;
  cfg.pipeline.dq_depth_threshold_cells = 400;
  if (with_faults) {
    faults::FaultPlanConfig f;
    f.seed = 77;
    f.torn_reads.probability = 0.25;
    f.trigger_storm.probability = 0.001;
    f.trigger_storm.forced_depth_cells = 500;
    f.clock_skew.max_abs_skew_ns = 2000;
    cfg.faults = f;
  }
  return cfg;
}

inline void encode_windows(std::vector<std::uint8_t>& buf,
                           const core::TimeWindowSet& w) {
  for (std::uint32_t bank = 0; bank < 4; ++bank) {
    const auto state = w.read_bank(bank, 0);
    for (const auto& window : state) {
      for (const auto& cell : window) {
        wire::put_u64(buf, cell.occupied ? flow_signature(cell.flow) : 0);
        wire::put_u64(buf, cell.cycle_id);
        wire::put_u8(buf, cell.occupied ? 1 : 0);
      }
    }
  }
}

inline void encode_monitor(std::vector<std::uint8_t>& buf,
                           const core::QueueMonitor& m,
                           std::uint32_t partitions) {
  for (std::uint32_t bank = 0; bank < 4; ++bank) {
    for (std::uint32_t part = 0; part < partitions; ++part) {
      const auto state = m.read_bank(bank, part);
      wire::put_u32(buf, state.top);
      for (const auto& e : state.entries) {
        wire::put_u64(buf, e.inc.valid ? flow_signature(e.inc.flow) : 0);
        wire::put_u64(buf, e.inc.seq);
        wire::put_u64(buf, e.dec.valid ? flow_signature(e.dec.flow) : 0);
        wire::put_u64(buf, e.dec.seq);
      }
    }
  }
}

/// A mkdtemp-backed scratch directory, removed on destruction.
class TempDir {
 public:
  TempDir() {
    std::string tmpl =
        (std::filesystem::temp_directory_path() / "pq-archive-XXXXXX")
            .string();
    if (::mkdtemp(tmpl.data()) == nullptr) {
      throw std::runtime_error("mkdtemp failed for " + tmpl);
    }
    path_ = tmpl;
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);
  }
  TempDir(const TempDir&) = delete;
  TempDir& operator=(const TempDir&) = delete;
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

/// Archive options the equivalence sweeps use: segments small enough that
/// every run rolls several per port, so segment boundaries are part of what
/// the byte-identity assertions exercise.
inline store::ArchiveOptions harness_archive_options(const std::string& dir) {
  store::ArchiveOptions opts;
  opts.dir = dir;
  opts.segment_bytes = 32 * 1024;
  opts.flush_watermark_bytes = 16 * 1024;
  return opts;
}

/// Everything the determinism contract promises, flattened to comparable
/// bytes/values.
struct RunResult {
  std::vector<std::uint8_t> registers;  ///< all shards, all banks
  std::vector<std::pair<std::uint64_t, double>> answers;  ///< sorted counts
  std::vector<std::uint8_t> fault_schedule;
  std::vector<std::uint64_t> dq_stream;  ///< (prefix, deq_ts) pairs flattened
  control::HealthStats health;
  std::uint64_t packets_seen = 0;
  std::uint64_t dq_fired = 0;
  /// Merged pq::obs registry in its deterministic serialization view
  /// (IncludeTimings::kNo) — must be byte-identical across thread counts
  /// and batch sizes.
  std::string metrics_json;
  /// pq::store archive written during the run, reduced to its logical
  /// content (ArchiveReader::logical_content) — same contract.
  std::vector<std::uint8_t> archive_bytes;
};

/// One equivalence-sweep execution, fully specified. Everything here is a
/// pure scheduling knob: any two specs over the same packets and
/// with_faults must produce byte-identical RunResults.
struct RunSpec {
  bool with_faults = false;
  unsigned threads = 1;
  std::uint32_t batch = 1;
  std::uint32_t ports = kPorts;
  /// Engine epoch size; nullopt = the ShardedSystem::Config default
  /// (epoch handoff on), 0 = the legacy end-of-run merge barrier.
  std::optional<Duration> epoch_ns;
  bool pin_threads = false;
};

/// Flattens a finished system to the full comparison surface. Factored out
/// of run_once() so other drivers of a ShardedSystem — in particular the
/// NetworkEngine's per-switch nodes (tests/net/network_differential_test) —
/// can assert byte-identity against a standalone run over the exact same
/// surface instead of a hand-picked subset. `archive_dir` is the directory
/// the (already closed) archive was written to.
inline RunResult collect_result(control::ShardedSystem& sys,
                                const std::string& archive_dir) {
  RunResult r;
  r.archive_bytes = store::ArchiveReader(archive_dir).logical_content();
  for (std::uint32_t s = 0; s < sys.pipeline().num_shards(); ++s) {
    auto& pipe = sys.pipeline().shard(s).pipeline();
    encode_windows(r.registers, pipe.windows());
    encode_monitor(r.registers, pipe.monitor(),
                   pipe.monitor().port_partitions());
  }

  // A mid-trace interval query and a point query on every shard.
  for (std::uint32_t s = 0; s < sys.pipeline().num_shards(); ++s) {
    const auto counts =
        sys.analysis().query_time_windows(s, 2'000'000, 4'000'000);
    std::vector<std::pair<std::uint64_t, double>> sorted;
    for (const auto& [flow, n] : counts) {
      sorted.emplace_back(flow_signature(flow), n);
    }
    std::sort(sorted.begin(), sorted.end());
    r.answers.insert(r.answers.end(), sorted.begin(), sorted.end());
    for (const auto& c : sys.analysis().query_queue_monitor(s, 3'000'000)) {
      r.answers.emplace_back(flow_signature(c.flow),
                             static_cast<double>(c.seq));
    }
  }

  for (const auto& d : sys.analysis().merged_dq_notifications()) {
    r.dq_stream.push_back(d.global_prefix);
    r.dq_stream.push_back(d.notification.deq_timestamp);
    r.dq_stream.push_back(flow_signature(d.notification.victim_flow));
  }
  if (sys.faults() != nullptr) {
    r.fault_schedule = sys.faults()->serialize_merged_schedule();
  }
  r.health = sys.analysis().health();
  r.packets_seen = sys.pipeline().packets_seen();
  r.dq_fired = sys.pipeline().dq_triggers_fired();
  r.metrics_json = control::collect_system_metrics(sys).to_json(
      obs::IncludeTimings::kNo);
  return r;
}

inline RunResult run_once(const std::vector<Packet>& packets,
                          const RunSpec& spec) {
  auto cfg = system_config(spec.with_faults, spec.ports);
  if (spec.epoch_ns.has_value()) cfg.epoch_ns = *spec.epoch_ns;
  control::ShardedSystem sys(std::move(cfg));
  const TempDir archive_dir;
  store::Archive archive(harness_archive_options(archive_dir.path()));
  archive.attach(sys.pipeline(), sys.analysis());
  auto opts = sys.default_run_options(spec.threads, spec.batch);
  opts.pin_threads = spec.pin_threads;
  sys.run(packets, opts);
  archive.close();
  return collect_result(sys, archive_dir.path());
}

/// Legacy signature used by the original 8-port sweeps.
inline RunResult run_once(const std::vector<Packet>& packets, bool with_faults,
                          unsigned threads, std::uint32_t batch = 1) {
  RunSpec spec;
  spec.with_faults = with_faults;
  spec.threads = threads;
  spec.batch = batch;
  return run_once(packets, spec);
}

}  // namespace pq::harness
