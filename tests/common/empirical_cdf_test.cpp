#include "common/empirical_cdf.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace pq {
namespace {

EmpiricalCdf simple() {
  return EmpiricalCdf({{0, 0.0}, {10, 0.5}, {20, 1.0}});
}

TEST(EmpiricalCdf, RejectsTooFewPoints) {
  EXPECT_THROW(EmpiricalCdf({{0, 1.0}}), std::invalid_argument);
}

TEST(EmpiricalCdf, RejectsNonMonotoneProb) {
  EXPECT_THROW(EmpiricalCdf({{0, 0.5}, {10, 0.2}, {20, 1.0}}),
               std::invalid_argument);
}

TEST(EmpiricalCdf, RejectsNonMonotoneValue) {
  EXPECT_THROW(EmpiricalCdf({{10, 0.0}, {5, 0.5}, {20, 1.0}}),
               std::invalid_argument);
}

TEST(EmpiricalCdf, RejectsNotEndingAtOne) {
  EXPECT_THROW(EmpiricalCdf({{0, 0.0}, {10, 0.9}}), std::invalid_argument);
}

TEST(EmpiricalCdf, QuantileInterpolatesLinearly) {
  const auto cdf = simple();
  EXPECT_DOUBLE_EQ(cdf.quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(0.25), 5.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(0.5), 10.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(0.75), 15.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(1.0), 20.0);
}

TEST(EmpiricalCdf, QuantileClampsOutOfRange) {
  const auto cdf = simple();
  EXPECT_DOUBLE_EQ(cdf.quantile(-1.0), 0.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(2.0), 20.0);
}

TEST(EmpiricalCdf, MeanOfUniformIsMidpoint) {
  EXPECT_DOUBLE_EQ(simple().mean(), 10.0);
}

TEST(EmpiricalCdf, MeanHandlesInitialPointMass) {
  // 40% mass at value 100, then linear to 200.
  EmpiricalCdf cdf({{100, 0.4}, {200, 1.0}});
  EXPECT_DOUBLE_EQ(cdf.mean(), 100 * 0.4 + 150 * 0.6);
}

TEST(EmpiricalCdf, SampleMeanConvergesToAnalyticMean) {
  const auto cdf = simple();
  Rng rng(31);
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += cdf.sample(rng);
  EXPECT_NEAR(sum / n, cdf.mean(), 0.1);
}

TEST(EmpiricalCdf, SampleRespectsSupportBounds) {
  const auto cdf = simple();
  Rng rng(33);
  for (int i = 0; i < 10000; ++i) {
    const double v = cdf.sample(rng);
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 20.0);
  }
}

TEST(BuildCdf, ProducesMonotoneKnotsEndingAtOne) {
  auto knots = build_cdf({3.0, 1.0, 2.0, 2.0, 5.0});
  ASSERT_EQ(knots.size(), 4u);  // 1, 2, 3, 5 distinct values
  EXPECT_DOUBLE_EQ(knots.front().value, 1.0);
  EXPECT_DOUBLE_EQ(knots.back().value, 5.0);
  EXPECT_DOUBLE_EQ(knots.back().prob, 1.0);
  for (std::size_t i = 1; i < knots.size(); ++i) {
    EXPECT_GT(knots[i].prob, knots[i - 1].prob);
    EXPECT_GT(knots[i].value, knots[i - 1].value);
  }
}

TEST(BuildCdf, DuplicatesMergeIntoOneKnot) {
  auto knots = build_cdf({2.0, 2.0, 2.0});
  ASSERT_EQ(knots.size(), 1u);
  EXPECT_DOUBLE_EQ(knots[0].prob, 1.0);
}

TEST(BuildCdf, EmptyInputGivesEmptyOutput) {
  EXPECT_TRUE(build_cdf({}).empty());
}

}  // namespace
}  // namespace pq
