#include "common/stats.h"

#include <gtest/gtest.h>

namespace pq {
namespace {

TEST(OnlineStats, EmptyIsZero) {
  OnlineStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(OnlineStats, SingleValue) {
  OnlineStats s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(OnlineStats, MatchesClosedForm) {
  OnlineStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance with n-1 = 7: sum of squared deviations is 32.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(OnlineStats, WelfordIsNumericallyStableForLargeOffsets) {
  OnlineStats s;
  for (int i = 0; i < 1000; ++i) s.add(1e9 + (i % 2));
  EXPECT_NEAR(s.mean(), 1e9 + 0.5, 1e-3);
  EXPECT_NEAR(s.variance(), 0.25, 0.01);
}

TEST(Quantile, EmptySampleIsZero) {
  EXPECT_DOUBLE_EQ(quantile({}, 0.5), 0.0);
}

TEST(Quantile, MedianOfOddSet) {
  EXPECT_DOUBLE_EQ(median({3.0, 1.0, 2.0}), 2.0);
}

TEST(Quantile, MedianOfEvenSetInterpolates) {
  EXPECT_DOUBLE_EQ(median({1.0, 2.0, 3.0, 4.0}), 2.5);
}

TEST(Quantile, Extremes) {
  std::vector<double> v{5.0, 1.0, 3.0};
  EXPECT_DOUBLE_EQ(quantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(v, 1.0), 5.0);
}

TEST(Quantile, ClampsOutOfRangeQ) {
  std::vector<double> v{1.0, 2.0};
  EXPECT_DOUBLE_EQ(quantile(v, -0.5), 1.0);
  EXPECT_DOUBLE_EQ(quantile(v, 1.5), 2.0);
}

TEST(Quantile, InterpolatesBetweenOrderStatistics) {
  EXPECT_DOUBLE_EQ(quantile({0.0, 10.0}, 0.25), 2.5);
}

}  // namespace
}  // namespace pq
