// The SPSC ring underneath the epoch handoff and the pq_serve ingest path:
// strict FIFO order, a hard capacity bound (full ring refuses, never
// grows), close semantics that let the consumer drain the remainder, and a
// producer/consumer thread pair moving a six-figure element count without
// loss or reordering (the TSan job runs this too).
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include "common/spsc_queue.h"

namespace pq {
namespace {

using namespace std::chrono_literals;

TEST(SpscQueue, FifoOrderSingleThread) {
  SpscQueue<int> q(8);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(q.try_push(int{i}));
  EXPECT_EQ(q.size(), 5u);
  int v = -1;
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(q.try_pop(v));
    EXPECT_EQ(v, i);
  }
  EXPECT_FALSE(q.try_pop(v));
  EXPECT_TRUE(q.empty());
}

TEST(SpscQueue, CapacityIsAHardBound) {
  SpscQueue<int> q(4);
  EXPECT_EQ(q.capacity(), 4u);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(q.try_push(int{i}));
  EXPECT_FALSE(q.try_push(99));  // full: refuse, never grow
  EXPECT_EQ(q.size(), 4u);
  EXPECT_EQ(q.peak_depth(), 4u);
  int v = -1;
  ASSERT_TRUE(q.try_pop(v));
  EXPECT_EQ(v, 0);
  EXPECT_TRUE(q.try_push(4));  // one slot freed, one accepted
  EXPECT_EQ(q.peak_depth(), 4u);
}

TEST(SpscQueue, CloseLetsConsumerDrain) {
  SpscQueue<int> q(8);
  EXPECT_TRUE(q.try_push(1));
  EXPECT_TRUE(q.try_push(2));
  q.close();
  EXPECT_TRUE(q.closed());
  EXPECT_FALSE(q.drained());
  EXPECT_FALSE(q.try_push(3));
  EXPECT_FALSE(q.push_wait(3));  // returns, does not block forever
  int v = -1;
  ASSERT_TRUE(q.try_pop(v));
  EXPECT_EQ(v, 1);
  ASSERT_TRUE(q.pop_wait(v, 1000us));
  EXPECT_EQ(v, 2);
  EXPECT_TRUE(q.drained());
  EXPECT_FALSE(q.pop_wait(v, 1000us));  // closed + empty: immediate false
}

TEST(SpscQueue, PopWaitTimesOutOnEmptyOpenQueue) {
  SpscQueue<int> q(4);
  int v = -1;
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_FALSE(q.pop_wait(v, 2000us));
  EXPECT_GE(std::chrono::steady_clock::now() - t0, 1ms);
}

TEST(SpscQueue, ConcurrentHandoffKeepsOrderAndCount) {
  constexpr std::uint64_t kCount = 200'000;
  SpscQueue<std::uint64_t> q(64);  // small ring: constant backpressure
  std::thread producer([&] {
    bool all_pushed = true;
    for (std::uint64_t i = 0; i < kCount; ++i) {
      all_pushed = q.push_wait(std::uint64_t{i}) && all_pushed;
    }
    q.close();
    EXPECT_TRUE(all_pushed);
  });
  std::uint64_t expect = 0;
  std::uint64_t v = 0;
  while (q.pop_wait(v, std::chrono::microseconds{200'000})) {
    ASSERT_EQ(v, expect);
    ++expect;
  }
  producer.join();
  EXPECT_EQ(expect, kCount);
  EXPECT_TRUE(q.drained());
  EXPECT_GE(q.peak_depth(), 1u);
  EXPECT_LE(q.peak_depth(), q.capacity());
}

}  // namespace
}  // namespace pq
