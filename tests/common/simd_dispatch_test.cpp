// The runtime SIMD dispatch contract (docs/ARCHITECTURE.md §13): requests
// parse and resolve to a level that is actually usable here, a forced level
// that is not usable falls back to scalar rather than faulting, and every
// SIMD kernel is byte-identical to its scalar oracle — including the
// unaligned heads and tails (0 .. width-1 leftover elements) where the
// vector loops hand back to scalar code, and the configurations the vector
// path refuses (non-power-of-two monitor granularity).
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/hash.h"
#include "common/simd/dispatch.h"
#include "core/queue_monitor.h"
#include "core/time_windows.h"

namespace pq {
namespace {

/// Every dispatch level usable on this machine, widest last. On a host
/// without AVX2 the sweep degenerates to {kScalar} and the suite still
/// proves the portable path against itself.
std::vector<simd::Level> sweep_levels() {
  std::vector<simd::Level> v{simd::Level::kScalar};
  if (simd::supported(simd::Level::kAvx2)) v.push_back(simd::Level::kAvx2);
  return v;
}

/// Forces a level for one sweep iteration; restores the configured request
/// (environment/default) on scope exit so tests cannot leak a forced level.
class ScopedLevel {
 public:
  explicit ScopedLevel(simd::Level level) { simd::set_active_level(level); }
  ~ScopedLevel() { simd::configure(); }
};

TEST(SimdDispatch, ParseRequest) {
  EXPECT_EQ(simd::parse_request("auto"), simd::Request::kAuto);
  EXPECT_EQ(simd::parse_request("avx2"), simd::Request::kAvx2);
  EXPECT_EQ(simd::parse_request("scalar"), simd::Request::kScalar);
  EXPECT_FALSE(simd::parse_request("").has_value());
  EXPECT_FALSE(simd::parse_request("AVX2").has_value());
  EXPECT_FALSE(simd::parse_request("sse").has_value());
  EXPECT_FALSE(simd::parse_request("scalar ").has_value());
}

TEST(SimdDispatch, ResolveAlwaysLandsOnUsableLevel) {
  for (const auto req : {simd::Request::kAuto, simd::Request::kAvx2,
                         simd::Request::kScalar}) {
    const simd::Level landed = simd::resolve(req);
    EXPECT_TRUE(simd::supported(landed)) << simd::to_string(req);
  }
  EXPECT_EQ(simd::resolve(simd::Request::kScalar), simd::Level::kScalar);
  // kAuto picks the widest usable level; a forced kAvx2 lands there exactly
  // when the CPU + build can execute it, and falls back to scalar otherwise
  // (the CPUID-fallback guarantee — never a fault, never a silent lie).
  const bool avx2 = simd::supported(simd::Level::kAvx2);
  EXPECT_EQ(simd::resolve(simd::Request::kAuto),
            avx2 ? simd::Level::kAvx2 : simd::Level::kScalar);
  EXPECT_EQ(simd::resolve(simd::Request::kAvx2),
            avx2 ? simd::Level::kAvx2 : simd::Level::kScalar);
}

TEST(SimdDispatch, SupportedImpliesCompiledAndCpu) {
  EXPECT_TRUE(simd::compiled(simd::Level::kScalar));
  EXPECT_TRUE(simd::cpu_supports(simd::Level::kScalar));
  EXPECT_TRUE(simd::supported(simd::Level::kScalar));
  EXPECT_EQ(simd::supported(simd::Level::kAvx2),
            simd::compiled(simd::Level::kAvx2) &&
                simd::cpu_supports(simd::Level::kAvx2));
}

TEST(SimdDispatch, ConfigureAppliesRequestAndReportsLanding) {
  const simd::Level before = simd::active_level();
  const simd::Level landed = simd::configure(simd::Request::kScalar);
  EXPECT_EQ(landed, simd::Level::kScalar);
  EXPECT_EQ(simd::active_level(), simd::Level::kScalar);
  EXPECT_EQ(simd::active_request(), simd::Request::kScalar);
  // Re-applying the environment/default request restores the initial level
  // (this suite does not set PQ_SIMD_LEVEL, so the default is kAuto).
  EXPECT_EQ(simd::configure(), before);
  EXPECT_EQ(simd::active_level(), before);
}

// Hash kernels across every tail length a vector loop can leave over:
// n = 0 .. 2*width so full groups, partial tails, and the empty input all
// occur. The scalar mix64 is the oracle.
TEST(SimdDispatch, HashBatchTailsMatchScalarOracle) {
  for (const simd::Level level : sweep_levels()) {
    ScopedLevel scope(level);
    for (std::size_t n = 0; n <= 16; ++n) {
      std::vector<std::uint64_t> in(n), out(n, 0xdead);
      std::vector<FlowId> flows(n);
      for (std::size_t i = 0; i < n; ++i) {
        in[i] = 0x123456789abcdef0ull * (i + 1) + n;
        flows[i] = make_flow(static_cast<std::uint32_t>(7 * i + n));
      }
      mix64_batch(in.data(), out.data(), n);
      for (std::size_t i = 0; i < n; ++i) {
        EXPECT_EQ(out[i], mix64(in[i]))
            << simd::to_string(level) << " n=" << n << " i=" << i;
      }
      std::vector<std::uint64_t> sig(n, 0xbeef);
      flow_signature_batch(flows.data(), sig.data(), n);
      for (std::size_t i = 0; i < n; ++i) {
        EXPECT_EQ(sig[i], flow_signature(flows[i]))
            << simd::to_string(level) << " n=" << n << " i=" << i;
      }
      // mix64_batch documents full aliasing (in == out).
      std::vector<std::uint64_t> inplace = in;
      mix64_batch(inplace.data(), inplace.data(), n);
      for (std::size_t i = 0; i < n; ++i) {
        EXPECT_EQ(inplace[i], mix64(in[i])) << "aliased n=" << n;
      }
    }
  }
}

// The window kernel's scalar head (first vector group needs element x-1)
// and tail both replay through the oracle; runs of every small length pin
// those boundaries, per dispatch level, against the per-packet path.
TEST(SimdDispatch, WindowRunTailsMatchPerPacketOracle) {
  core::TimeWindowParams p;
  p.m0 = 4;
  p.alpha = 2;
  p.k = 5;
  p.num_windows = 3;
  p.num_ports = 1;
  for (const simd::Level level : sweep_levels()) {
    ScopedLevel scope(level);
    core::TimeWindowSet oracle(p);
    core::TimeWindowSet batched(p);
    Timestamp t = 100;
    for (std::size_t n = 0; n <= 12; ++n) {
      std::vector<FlowId> flows(n);
      std::vector<Timestamp> deq(n);
      for (std::size_t i = 0; i < n; ++i) {
        // Small advances with repeats: eviction chains and equal-TTS
        // duplicates inside the tiny run lengths.
        t += (i % 3 == 0) ? 0 : 17 * (i + n);
        flows[i] = make_flow(static_cast<std::uint32_t>(i + 31 * n));
        deq[i] = t;
      }
      for (std::size_t i = 0; i < n; ++i) {
        oracle.on_packet(0, flows[i], deq[i]);
      }
      batched.absorb_run(0, flows.data(), deq.data(), n);
      EXPECT_EQ(oracle.stats().stored, batched.stats().stored) << "n=" << n;
      EXPECT_EQ(oracle.stats().passed, batched.stats().passed) << "n=" << n;
      EXPECT_EQ(oracle.stats().dropped, batched.stats().dropped) << "n=" << n;
    }
    const auto a = oracle.read_bank(0, 0);
    const auto b = batched.read_bank(0, 0);
    for (std::size_t w = 0; w < a.size(); ++w) {
      for (std::size_t c = 0; c < a[w].size(); ++c) {
        ASSERT_EQ(a[w][c].occupied, b[w][c].occupied)
            << simd::to_string(level) << " w" << w << " cell " << c;
        if (!a[w][c].occupied) continue;
        EXPECT_EQ(a[w][c].flow, b[w][c].flow) << "w" << w << " cell " << c;
        EXPECT_EQ(a[w][c].cycle_id, b[w][c].cycle_id)
            << "w" << w << " cell " << c;
      }
    }
  }
}

// Non-power-of-two monitor granularity must refuse the vector path (its
// level computation is a shift) and still produce identical state through
// the portable loop, whatever level is active.
TEST(SimdDispatch, MonitorNonPowerOfTwoGranularityFallsBack) {
  core::QueueMonitorParams p;
  p.max_depth_cells = 2'000;
  p.granularity_cells = 48;  // not a power of two
  p.num_ports = 1;
  for (const simd::Level level : sweep_levels()) {
    ScopedLevel scope(level);
    core::QueueMonitor oracle(p);
    core::QueueMonitor batched(p);
    std::vector<FlowId> flows;
    std::vector<std::uint32_t> depth;
    for (std::size_t i = 0; i < 300; ++i) {
      flows.push_back(make_flow(static_cast<std::uint32_t>(i % 11)));
      depth.push_back(static_cast<std::uint32_t>((i * 97) % 1'900 + 1));
    }
    for (std::size_t i = 0; i < flows.size(); ++i) {
      oracle.on_packet(0, flows[i], depth[i]);
    }
    batched.absorb_run(0, flows.data(), depth.data(), flows.size());
    const auto ma = oracle.read_bank(oracle.active_bank(), 0);
    const auto mb = batched.read_bank(batched.active_bank(), 0);
    ASSERT_EQ(ma.top, mb.top) << simd::to_string(level);
    ASSERT_EQ(ma.entries.size(), mb.entries.size());
    for (std::size_t i = 0; i < ma.entries.size(); ++i) {
      EXPECT_EQ(ma.entries[i].inc.valid, mb.entries[i].inc.valid) << i;
      EXPECT_EQ(ma.entries[i].dec.valid, mb.entries[i].dec.valid) << i;
      if (ma.entries[i].inc.valid && mb.entries[i].inc.valid) {
        EXPECT_EQ(ma.entries[i].inc.flow, mb.entries[i].inc.flow) << i;
        EXPECT_EQ(ma.entries[i].inc.seq, mb.entries[i].inc.seq) << i;
      }
      if (ma.entries[i].dec.valid && mb.entries[i].dec.valid) {
        EXPECT_EQ(ma.entries[i].dec.flow, mb.entries[i].dec.flow) << i;
        EXPECT_EQ(ma.entries[i].dec.seq, mb.entries[i].dec.seq) << i;
      }
    }
  }
}

}  // namespace
}  // namespace pq
