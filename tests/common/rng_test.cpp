#include "common/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <map>

namespace pq {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(Rng, UniformIsInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanIsHalf) {
  Rng rng(7);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformBelowCoversRange) {
  Rng rng(9);
  std::map<std::uint64_t, int> hist;
  for (int i = 0; i < 6000; ++i) ++hist[rng.uniform_below(6)];
  ASSERT_EQ(hist.size(), 6u);
  for (const auto& [v, c] : hist) {
    EXPECT_LT(v, 6u);
    EXPECT_GT(c, 700);
  }
}

TEST(Rng, UniformRangeInclusive) {
  Rng rng(11);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_range(3, 5);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 5u);
    saw_lo |= (v == 3);
    saw_hi |= (v == 5);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, ExponentialMeanMatches) {
  Rng rng(13);
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(40.0);
  EXPECT_NEAR(sum / n, 40.0, 0.5);
}

TEST(Rng, ExponentialIsPositive) {
  Rng rng(15);
  for (int i = 0; i < 10000; ++i) EXPECT_GT(rng.exponential(1.0), 0.0);
}

TEST(Rng, ChanceProbability) {
  Rng rng(17);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.chance(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, ParetoHasHeavyTail) {
  Rng rng(19);
  double max_v = 0;
  int above_10x = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.pareto(1.0, 1.2);
    EXPECT_GE(v, 1.0);
    max_v = std::max(max_v, v);
    if (v > 10.0) ++above_10x;
  }
  // P(X > 10) = 10^-1.2 ~ 6.3%.
  EXPECT_NEAR(static_cast<double>(above_10x) / n, 0.063, 0.01);
  EXPECT_GT(max_v, 100.0);
}

TEST(ZipfSampler, RankZeroIsMostPopular) {
  Rng rng(21);
  ZipfSampler zipf(1000, 1.1);
  std::vector<int> hist(1000, 0);
  for (int i = 0; i < 200000; ++i) ++hist[zipf(rng)];
  EXPECT_GT(hist[0], hist[1]);
  EXPECT_GT(hist[1], hist[10]);
  EXPECT_GT(hist[10], hist[500]);
}

TEST(ZipfSampler, LongTailMatchesPaperUWCharacteristic) {
  // The UW trace's 100th-largest flow carries under 1% of the largest.
  Rng rng(23);
  ZipfSampler zipf(20000, 1.05);
  std::vector<int> hist(20000, 0);
  for (int i = 0; i < 2000000; ++i) ++hist[zipf(rng)];
  EXPECT_LT(static_cast<double>(hist[99]),
            0.015 * static_cast<double>(hist[0]));
}

TEST(ZipfSampler, StaysInRange) {
  Rng rng(25);
  ZipfSampler zipf(10, 0.8);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(zipf(rng), 10u);
}

}  // namespace
}  // namespace pq
