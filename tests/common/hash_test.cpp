#include "common/hash.h"

#include <gtest/gtest.h>

#include <array>
#include <bit>
#include <set>
#include <unordered_set>
#include <vector>

namespace pq {
namespace {

TEST(Mix64, IsDeterministic) {
  EXPECT_EQ(mix64(42), mix64(42));
  EXPECT_EQ(mix64(0), mix64(0));
}

TEST(Mix64, SmallInputChangesSpreadWidely) {
  // Adjacent inputs must differ in roughly half of the output bits.
  int total_bits = 0;
  for (std::uint64_t i = 0; i < 256; ++i) {
    total_bits += std::popcount(mix64(i) ^ mix64(i + 1));
  }
  const double avg = total_bits / 256.0;
  EXPECT_GT(avg, 24.0);
  EXPECT_LT(avg, 40.0);
}

TEST(Mix64, NoCollisionsOnSequentialInputs) {
  std::unordered_set<std::uint64_t> seen;
  for (std::uint64_t i = 0; i < 100000; ++i) {
    EXPECT_TRUE(seen.insert(mix64(i)).second) << "collision at " << i;
  }
}

TEST(Fnv1a, MatchesKnownVectors) {
  // FNV-1a 64-bit test vectors.
  EXPECT_EQ(fnv1a("", 0), 0xcbf29ce484222325ull);
  EXPECT_EQ(fnv1a("a", 1), 0xaf63dc4c8601ec8cull);
  EXPECT_EQ(fnv1a("foobar", 6), 0x85944171f73967e8ull);
}

TEST(Fnv1a, SensitiveToEveryByte) {
  const char a[] = {1, 2, 3, 4};
  const char b[] = {1, 2, 3, 5};
  EXPECT_NE(fnv1a(a, 4), fnv1a(b, 4));
}

TEST(FlowSignature, DistinctFlowsGetDistinctSignatures) {
  std::unordered_set<std::uint64_t> seen;
  for (std::uint32_t i = 0; i < 200000; ++i) {
    seen.insert(flow_signature(make_flow(i)));
  }
  // make_flow maps distinct small integers to distinct tuples; with 64-bit
  // signatures collisions among 200k flows should be absent.
  EXPECT_EQ(seen.size(), 200000u);
}

TEST(FlowSignature, OrderOfEndpointsMatters) {
  FlowId a = make_flow(1);
  FlowId b = a;
  std::swap(b.src_ip, b.dst_ip);
  EXPECT_NE(flow_signature(a), flow_signature(b));
}

TEST(EcmpSignature, IsDeterministicAndDistinctFromFlowSignature) {
  const FlowId f = make_flow(17);
  EXPECT_EQ(ecmp_signature(f), ecmp_signature(f));
  // Same tuple, different hash function — equality would mean path choice
  // mirrors sketch placement.
  EXPECT_NE(ecmp_signature(f), flow_signature(f));
}

TEST(EcmpSignature, IndependentOfFlowSignatureBuckets) {
  // The regression the kEcmpHashSeed exists to prevent: flows that collide
  // in a small flow_signature register index must NOT systematically share
  // an ECMP path. Bucket 200k flows by their low-9-bit flow hash (the
  // time-window register index at k=9), then check each such cohort still
  // spreads over a 4-way equal-cost set. A correlated hash pair would put
  // every cohort member on one path and break the attribution scenarios'
  // path diversity.
  constexpr std::uint32_t kCohortBits = 9;
  constexpr std::uint64_t kPaths = 4;
  std::vector<std::array<std::uint32_t, kPaths>> spread(1u << kCohortBits,
                                                        {0, 0, 0, 0});
  for (std::uint32_t i = 0; i < 200000; ++i) {
    const FlowId f = make_flow(i);
    const auto cohort = flow_signature(f) & ((1u << kCohortBits) - 1);
    ++spread[cohort][ecmp_signature(f) % kPaths];
  }
  for (std::size_t cohort = 0; cohort < spread.size(); ++cohort) {
    std::uint32_t total = 0;
    std::uint32_t used = 0;
    for (const auto n : spread[cohort]) {
      total += n;
      used += n > 0 ? 1 : 0;
    }
    // ~390 flows per cohort; with independent hashes every cohort uses all
    // four paths, and no path starves below a loose fairness bound.
    ASSERT_GT(total, 100u);
    EXPECT_EQ(used, kPaths) << "cohort " << cohort << " collapsed onto "
                            << used << " path(s)";
    for (const auto n : spread[cohort]) {
      EXPECT_GT(n, total / 16) << "cohort " << cohort;
    }
  }
}

TEST(FlowIdToString, RendersTuple) {
  FlowId f{.src_ip = 0x0a000001,
           .dst_ip = 0x0a000002,
           .src_port = 1234,
           .dst_port = 80,
           .proto = 6};
  EXPECT_EQ(to_string(f), "10.0.0.1:1234->10.0.0.2:80/6");
}

TEST(HashFamily, DifferentIndicesGiveIndependentFunctions) {
  HashFamily fam(7);
  const FlowId f = make_flow(3);
  EXPECT_NE(fam(0, f), fam(1, f));
  EXPECT_NE(fam(1, f), fam(2, f));
}

TEST(HashFamily, SameSeedSameOutput) {
  HashFamily a(9), b(9);
  EXPECT_EQ(a(0, make_flow(5)), b(0, make_flow(5)));
}

TEST(HashFamily, IndexStaysInRange) {
  HashFamily fam(11);
  for (std::uint32_t i = 0; i < 1000; ++i) {
    EXPECT_LT(fam.index(i % 4, make_flow(i), 100), 100u);
  }
}

TEST(HashFamily, IndexDistributionIsRoughlyUniform) {
  HashFamily fam(13);
  std::vector<int> buckets(64, 0);
  const int n = 64000;
  for (int i = 0; i < n; ++i) {
    ++buckets[fam.index(0, make_flow(static_cast<std::uint32_t>(i)), 64)];
  }
  for (int c : buckets) {
    EXPECT_GT(c, 700);   // expected 1000 per bucket
    EXPECT_LT(c, 1300);
  }
}

TEST(BytesToCells, RoundsUp) {
  EXPECT_EQ(bytes_to_cells(1), 1u);
  EXPECT_EQ(bytes_to_cells(80), 1u);
  EXPECT_EQ(bytes_to_cells(81), 2u);
  EXPECT_EQ(bytes_to_cells(1500), 19u);
}

TEST(TxDelay, MatchesLineRateArithmetic) {
  // 1500 B at 10 Gb/s = 1200 ns exactly.
  EXPECT_EQ(tx_delay_ns(1500, 10.0), 1200u);
  // 64 B at 10 Gb/s = 51.2 ns, rounded up.
  EXPECT_EQ(tx_delay_ns(64, 10.0), 52u);
  // 250 B at 4 Gb/s = 500 ns.
  EXPECT_EQ(tx_delay_ns(250, 4.0), 500u);
}

}  // namespace
}  // namespace pq
