// Unit tests for the per-shard fault-plan derivation: every shard draws
// from its own RNG stream (seed mixed from the plan seed and the port), so
// one shard's consumption never shifts a sibling's schedule — the property
// that makes the merged schedule byte-identical for any thread count and
// any batch size.
#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <vector>

#include "faults/sharded_faults.h"

namespace pq::faults {
namespace {

faults::FaultPlanConfig base_config() {
  FaultPlanConfig cfg;
  cfg.seed = 77;
  cfg.torn_reads.probability = 0.5;
  cfg.torn_reads.cells_scrambled = 4;
  cfg.trigger_storm.probability = 0.4;
  cfg.trigger_storm.forced_depth_cells = 500;
  cfg.clock_skew.max_abs_skew_ns = 2'000;
  return cfg;
}

/// A fresh, deterministic snapshot for one torn-read probe. Rebuilt per
/// call because the injector scrambles it in place.
core::WindowState make_snapshot() {
  core::WindowState snap(2, std::vector<core::WindowCell>(32));
  for (std::size_t w = 0; w < snap.size(); ++w) {
    for (std::size_t c = 0; c < snap[w].size(); ++c) {
      snap[w][c].flow = make_flow(static_cast<std::uint32_t>(w * 100 + c));
      snap[w][c].cycle_id = 7;
      snap[w][c].occupied = true;
    }
  }
  return snap;
}

/// Drives `reads` torn-read probes against one shard's injector.
void drive_torn_reads(ShardedFaultPlan& plan, std::uint32_t port,
                      int reads) {
  for (int i = 0; i < reads; ++i) {
    auto snap = make_snapshot();
    plan.read_faults(port)->on_window_read(0, snap);
  }
}

TEST(ShardSeed, DistinctAcrossPortsAndSensitiveToPlanSeed) {
  std::set<std::uint64_t> seen;
  for (std::uint32_t p = 0; p < 64; ++p) {
    seen.insert(shard_seed(77, p));
  }
  EXPECT_EQ(seen.size(), 64u) << "per-port seeds must not collide";
  EXPECT_EQ(seen.count(77), 0u) << "no shard reuses the plan seed verbatim";
  for (std::uint32_t p = 0; p < 64; ++p) {
    EXPECT_NE(shard_seed(77, p), shard_seed(78, p)) << "port " << p;
    EXPECT_EQ(shard_seed(77, p), shard_seed(77, p));  // pure function
  }
}

TEST(ShardedFaults, ShardStreamIndependentOfSiblingActivity) {
  // Plan A exercises port 0 heavily before touching port 1; plan B never
  // touches port 0. If the shards shared one stream, port 0's draws would
  // shift port 1's schedule. They must not.
  ShardedFaultPlan a(base_config());
  drive_torn_reads(a, /*port=*/0, 40);
  drive_torn_reads(a, /*port=*/1, 80);

  ShardedFaultPlan b(base_config());
  drive_torn_reads(b, /*port=*/1, 80);

  ASSERT_FALSE(a.plan_for(1).schedule().empty());
  EXPECT_EQ(a.plan_for(1).serialize_schedule(),
            b.plan_for(1).serialize_schedule());
  // And the sibling did fire on its own stream in plan A.
  EXPECT_FALSE(a.plan_for(0).schedule().empty());
  EXPECT_NE(a.plan_for(0).serialize_schedule(),
            a.plan_for(1).serialize_schedule());
}

TEST(ShardedFaults, MergedScheduleIndependentOfDriveOrder) {
  // Thread scheduling decides which shard drains first; the merged
  // schedule must not care.
  ShardedFaultPlan a(base_config());
  drive_torn_reads(a, /*port=*/0, 30);
  drive_torn_reads(a, /*port=*/2, 50);

  ShardedFaultPlan b(base_config());
  drive_torn_reads(b, /*port=*/2, 50);
  drive_torn_reads(b, /*port=*/0, 30);

  ASSERT_FALSE(a.merged_schedule().empty());
  EXPECT_EQ(a.serialize_merged_schedule(), b.serialize_merged_schedule());
}

/// Terminal hook recording what actually reaches the pipeline after the
/// fault chain, flattened to comparable values.
struct RecordingHook final : sim::EgressHook {
  std::vector<std::uint64_t> seen;
  void on_egress(const sim::EgressContext& ctx) override {
    seen.push_back(flow_signature(ctx.flow));
    seen.push_back(ctx.deq_timestamp());
    seen.push_back(ctx.enq_qdepth);
    seen.push_back(ctx.packet_id);
  }
};

std::vector<sim::EgressContext> chain_workload() {
  std::vector<sim::EgressContext> ctxs;
  for (std::uint32_t i = 0; i < 300; ++i) {
    sim::EgressContext c;
    c.flow = make_flow(i % 13);
    c.egress_port = 3;
    c.enq_timestamp = 1'000 + 700ull * i;
    c.deq_timedelta = 120;
    c.enq_qdepth = i % 90;  // below the storm's forced depth
    c.packet_id = i;
    ctxs.push_back(c);
  }
  return ctxs;
}

TEST(ShardedFaults, EgressChainBatchDeliveryMatchesScalar) {
  // Interposers inherit the element-wise on_egress_batch default, so a
  // batch walking the storm+skew chain must produce the same downstream
  // stream and the same fired-fault schedule as per-packet delivery.
  const auto ctxs = chain_workload();

  ShardedFaultPlan scalar_plan(base_config());
  RecordingHook scalar_sink;
  sim::EgressHook* scalar_chain =
      scalar_plan.attach_egress_chain(3, &scalar_sink);
  for (const auto& c : ctxs) scalar_chain->on_egress(c);

  ShardedFaultPlan batch_plan(base_config());
  RecordingHook batch_sink;
  sim::EgressHook* batch_chain =
      batch_plan.attach_egress_chain(3, &batch_sink);
  sim::PacketBatch pb;
  for (std::size_t i = 0; i < ctxs.size(); ++i) {
    pb.push(ctxs[i]);
    if (pb.size() == 64 || i + 1 == ctxs.size()) {
      batch_chain->on_egress_batch(pb);
      pb.clear();
    }
  }

  // The storm must have forced triggers (inflated depths) for this to test
  // anything; skew rewrites every timestamp.
  ASSERT_FALSE(scalar_plan.plan_for(3).schedule().empty());
  EXPECT_EQ(scalar_sink.seen, batch_sink.seen);
  EXPECT_EQ(scalar_plan.serialize_merged_schedule(),
            batch_plan.serialize_merged_schedule());
}

}  // namespace
}  // namespace pq::faults
