#include "wire/trace_io.h"

#include <gtest/gtest.h>

#include <sstream>

namespace pq::wire {
namespace {

std::vector<TelemetryRecord> sample_records(std::size_t n) {
  std::vector<TelemetryRecord> recs;
  for (std::size_t i = 0; i < n; ++i) {
    TelemetryRecord r;
    r.flow = make_flow(static_cast<std::uint32_t>(i));
    r.egress_port = static_cast<std::uint32_t>(i % 4);
    r.size_bytes = 64 + static_cast<std::uint32_t>(i);
    r.enq_timestamp = 1000 * i;
    r.deq_timedelta = 17 * i;
    r.enq_qdepth = static_cast<std::uint32_t>(i * i);
    r.packet_id = i + 1;
    recs.push_back(r);
  }
  return recs;
}

TEST(TraceIo, RoundTripsRecords) {
  const auto recs = sample_records(100);
  std::stringstream ss;
  write_trace(ss, recs);
  const auto back = read_trace(ss);
  ASSERT_EQ(back.size(), recs.size());
  for (std::size_t i = 0; i < recs.size(); ++i) {
    EXPECT_EQ(back[i].flow, recs[i].flow);
    EXPECT_EQ(back[i].egress_port, recs[i].egress_port);
    EXPECT_EQ(back[i].size_bytes, recs[i].size_bytes);
    EXPECT_EQ(back[i].enq_timestamp, recs[i].enq_timestamp);
    EXPECT_EQ(back[i].deq_timedelta, recs[i].deq_timedelta);
    EXPECT_EQ(back[i].enq_qdepth, recs[i].enq_qdepth);
    EXPECT_EQ(back[i].packet_id, recs[i].packet_id);
  }
}

TEST(TraceIo, RoundTripsEmptyTrace) {
  std::stringstream ss;
  write_trace(ss, {});
  EXPECT_TRUE(read_trace(ss).empty());
}

TEST(TraceIo, DetectsCorruption) {
  std::stringstream ss;
  write_trace(ss, sample_records(10));
  std::string data = ss.str();
  data[20] ^= 0x01;
  std::stringstream corrupted(data);
  EXPECT_THROW(read_trace(corrupted), std::runtime_error);
}

TEST(TraceIo, DetectsTruncation) {
  std::stringstream ss;
  write_trace(ss, sample_records(10));
  std::string data = ss.str();
  std::stringstream truncated(data.substr(0, data.size() / 2));
  EXPECT_THROW(read_trace(truncated), std::runtime_error);
}

TEST(TraceIo, DetectsBadMagic) {
  std::stringstream ss;
  write_trace(ss, sample_records(2));
  std::string data = ss.str();
  data[0] = static_cast<char>(data[0] ^ 0xff);
  std::stringstream bad(data);
  EXPECT_THROW(read_trace(bad), std::runtime_error);
}

TEST(TraceIo, FileRoundTrip) {
  const auto recs = sample_records(25);
  const std::string path = testing::TempDir() + "/pq_trace_test.bin";
  write_trace_file(path, recs);
  const auto back = read_trace_file(path);
  EXPECT_EQ(back.size(), 25u);
  EXPECT_EQ(back[24].packet_id, 25u);
}

TEST(TraceIo, MissingFileThrows) {
  EXPECT_THROW(read_trace_file("/nonexistent/pq.bin"), std::runtime_error);
}

}  // namespace
}  // namespace pq::wire
