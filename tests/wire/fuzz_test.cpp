// Robustness sweeps for every wire-format parser: arbitrary truncation and
// random corruption must never crash, loop, or fabricate success where the
// checksum should catch it.
#include <gtest/gtest.h>

#include <sstream>

#include "common/hash.h"
#include "common/rng.h"
#include "control/query_service.h"
#include "wire/bytes.h"
#include "wire/headers.h"
#include "wire/telemetry.h"
#include "wire/trace_io.h"

namespace pq::wire {
namespace {

std::vector<std::uint8_t> sample_frame() {
  Packet pkt;
  pkt.flow = make_flow(77);
  pkt.size_bytes = 400;
  pkt.priority = 1;
  TelemetryHeader tele;
  tele.enq_timestamp = 123456;
  tele.deq_timedelta = 789;
  tele.enq_qdepth = 42;
  return build_eval_frame(pkt, tele);
}

TEST(WireFuzz, FrameParserSurvivesEveryTruncation) {
  const auto frame = sample_frame();
  for (std::size_t len = 0; len <= frame.size(); ++len) {
    const auto span = std::span<const std::uint8_t>(frame.data(), len);
    const auto parsed = parse_frame(span);  // must not crash
    if (len == frame.size()) {
      EXPECT_TRUE(parsed.has_value());
    }
  }
}

TEST(WireFuzz, TelemetryParserSurvivesEveryTruncation) {
  std::vector<std::uint8_t> buf;
  encode_telemetry(buf, TelemetryHeader{});
  for (std::size_t len = 0; len < buf.size(); ++len) {
    EXPECT_FALSE(
        parse_telemetry(std::span<const std::uint8_t>(buf.data(), len))
            .has_value())
        << "len=" << len;
  }
}

TEST(WireFuzz, SingleByteFlipsNeverParseAsValidWithWrongContent) {
  // IPv4 header flips must be caught by the header checksum; payload flips
  // land in the telemetry/padding, which carries no integrity by design.
  const auto frame = sample_frame();
  const std::size_t ip_start = EthernetHeader::kSize;
  for (std::size_t i = ip_start; i < ip_start + Ipv4Header::kSize; ++i) {
    for (std::uint8_t bit = 0; bit < 8; ++bit) {
      auto corrupted = frame;
      corrupted[i] ^= static_cast<std::uint8_t>(1u << bit);
      const auto parsed = parse_frame(corrupted);
      if (parsed.has_value()) {
        // The only survivable flips are those the internet checksum cannot
        // see, and there are none for single-bit errors.
        ADD_FAILURE() << "flip at byte " << i << " bit " << int(bit)
                      << " went undetected";
      }
    }
  }
}

TEST(WireFuzz, CollectorHandlesRandomGarbage) {
  TelemetryCollector col;
  Rng rng(99);
  for (int i = 0; i < 500; ++i) {
    std::vector<std::uint8_t> junk(rng.uniform_below(200));
    for (auto& b : junk) b = static_cast<std::uint8_t>(rng());
    col.ingest(junk);  // must not crash
  }
  EXPECT_EQ(col.records().size(), 0u);
  EXPECT_EQ(col.malformed_count(), 500u);
}

TEST(WireFuzz, TraceReaderSurvivesTruncationSweep) {
  std::vector<TelemetryRecord> recs(20);
  for (std::uint32_t i = 0; i < 20; ++i) {
    recs[i].flow = make_flow(i);
    recs[i].enq_timestamp = i * 100;
  }
  std::stringstream ss;
  write_trace(ss, recs);
  const std::string data = ss.str();
  for (std::size_t len = 0; len < data.size(); len += 7) {
    std::stringstream in(data.substr(0, len));
    EXPECT_THROW(read_trace(in), std::runtime_error) << "len=" << len;
  }
}

TEST(WireFuzz, TraceReaderSurvivesRandomFlips) {
  std::vector<TelemetryRecord> recs(50);
  for (std::uint32_t i = 0; i < 50; ++i) recs[i].flow = make_flow(i);
  std::stringstream ss;
  write_trace(ss, recs);
  const std::string data = ss.str();
  Rng rng(7);
  for (int trial = 0; trial < 200; ++trial) {
    std::string corrupted = data;
    corrupted[rng.uniform_below(corrupted.size())] ^=
        static_cast<char>(1 + rng.uniform_below(255));
    std::stringstream in(corrupted);
    EXPECT_THROW(read_trace(in), std::runtime_error) << "trial " << trial;
  }
}

// --- QueryService request/response codec -----------------------------------
//
// The control-plane query protocol rides a lossy transport, so its codec
// gets the same treatment as the packet parsers: truncation sweeps, bit
// flips and lying length fields must never crash the service and must never
// produce a kOk answer from a corrupted frame.

struct QueryRig {
  QueryRig() : pipeline(make_cfg()), analysis(pipeline, make_acfg()),
               service(analysis) {
    pipeline.enable_port(0);
  }
  static core::PipelineConfig make_cfg() {
    core::PipelineConfig cfg;
    cfg.windows.m0 = 4;
    cfg.windows.alpha = 1;
    cfg.windows.k = 6;
    cfg.windows.num_windows = 3;
    cfg.monitor.max_depth_cells = 200;
    return cfg;
  }
  static control::AnalysisConfig make_acfg() {
    control::AnalysisConfig a;
    a.z0_override = 1.0;
    return a;
  }
  core::PrintQueuePipeline pipeline;
  control::AnalysisProgram analysis;
  control::QueryService service;
};

control::QueryRequest sample_request() {
  control::QueryRequest req;
  req.type = control::QueryType::kTimeWindows;
  req.t1 = 100;
  req.t2 = 900;
  req.request_id = 12345;
  return req;
}

TEST(QueryCodecFuzz, RequestSurvivesEveryTruncation) {
  QueryRig rig;
  const auto frame = control::encode_request(sample_request());
  for (std::size_t len = 0; len < frame.size(); ++len) {
    const auto resp = control::decode_response(rig.service.handle(
        std::span<const std::uint8_t>(frame.data(), len)));
    EXPECT_EQ(resp.status, control::QueryStatus::kMalformed) << "len=" << len;
  }
  EXPECT_EQ(rig.service.requests_served(), 0u);
  EXPECT_EQ(rig.service.requests_rejected(), frame.size());
}

TEST(QueryCodecFuzz, EveryRequestBitFlipIsCaughtByTheCrc) {
  QueryRig rig;
  const auto frame = control::encode_request(sample_request());
  for (std::size_t i = 0; i < frame.size(); ++i) {
    for (std::uint8_t bit = 0; bit < 8; ++bit) {
      auto corrupted = frame;
      corrupted[i] ^= static_cast<std::uint8_t>(1u << bit);
      const auto resp = control::decode_response(
          rig.service.handle(corrupted));
      EXPECT_EQ(resp.status, control::QueryStatus::kMalformed)
          << "flip at byte " << i << " bit " << int(bit);
    }
  }
  EXPECT_EQ(rig.service.requests_served(), 0u);
  EXPECT_EQ(rig.service.health().crc_rejected, frame.size() * 8);
}

TEST(QueryCodecFuzz, ServiceHandlesRandomGarbage) {
  QueryRig rig;
  Rng rng(31);
  for (int i = 0; i < 500; ++i) {
    std::vector<std::uint8_t> junk(rng.uniform_below(120));
    for (auto& b : junk) b = static_cast<std::uint8_t>(rng());
    const auto resp = control::decode_response(rig.service.handle(junk));
    EXPECT_NE(resp.status, control::QueryStatus::kOk);
    EXPECT_NE(resp.status, control::QueryStatus::kPartial);
  }
  EXPECT_EQ(rig.service.requests_served(), 0u);
  EXPECT_EQ(rig.service.requests_rejected(), 500u);
}

TEST(QueryCodecFuzz, ResponseSurvivesEveryTruncation) {
  control::QueryResponse resp;
  resp.type = control::QueryType::kQueueMonitor;
  for (std::uint32_t i = 0; i < 5; ++i) {
    core::OriginalCulprit c;
    c.flow = make_flow(i);
    c.level = i * 10;
    c.seq = i;
    resp.culprits.push_back(c);
  }
  const auto frame = control::encode_response(resp);
  for (std::size_t len = 0; len < frame.size(); ++len) {
    const auto decoded = control::decode_response(
        std::span<const std::uint8_t>(frame.data(), len));
    EXPECT_EQ(decoded.status, control::QueryStatus::kMalformed)
        << "len=" << len;
    EXPECT_TRUE(decoded.culprits.empty());
  }
}

/// Hand-crafts a response frame whose length field claims `n` entries but
/// whose payload carries none — with a *valid* CRC, so only the bounds
/// audit can reject it.
std::vector<std::uint8_t> lying_response(control::QueryType type,
                                         std::uint32_t n) {
  std::vector<std::uint8_t> buf;
  put_u32(buf, control::kQueryResponseMagic);
  put_u8(buf, static_cast<std::uint8_t>(type));
  put_u8(buf, static_cast<std::uint8_t>(control::QueryStatus::kOk));
  put_u64(buf, 1);  // request_id
  put_u64(buf, 0);  // confidence bits (0.0)
  put_u32(buf, n);  // the lie: no entry bytes follow
  put_u32(buf, crc32(buf.data(), buf.size()));
  return buf;
}

TEST(QueryCodecFuzz, LyingEntryCountIsRejectedBeforeAllocation) {
  // A hostile n close to 2^32 would drive a multi-gigabyte reserve if the
  // decoder trusted it; the bounds audit must reject from the 34-byte frame
  // alone. (If this regresses, the test dies by OOM, not by assertion.)
  for (const auto type : {control::QueryType::kTimeWindows,
                          control::QueryType::kQueueMonitor}) {
    for (const std::uint32_t n : {1u, 2u, 1000u, 0xFFFFFFFFu}) {
      const auto decoded = control::decode_response(lying_response(type, n));
      EXPECT_EQ(decoded.status, control::QueryStatus::kMalformed)
          << "type=" << int(type) << " n=" << n;
      EXPECT_TRUE(decoded.counts.empty());
      EXPECT_TRUE(decoded.culprits.empty());
    }
  }
}

TEST(QueryCodecFuzz, ResponseRandomFlipsNeverYieldOk) {
  control::QueryResponse resp;
  resp.type = control::QueryType::kTimeWindows;
  for (std::uint32_t i = 0; i < 8; ++i) resp.counts[make_flow(i)] = i * 1.5;
  const auto frame = control::encode_response(resp);
  Rng rng(77);
  for (int trial = 0; trial < 300; ++trial) {
    auto corrupted = frame;
    corrupted[rng.uniform_below(corrupted.size())] ^=
        static_cast<std::uint8_t>(1 + rng.uniform_below(255));
    const auto decoded = control::decode_response(corrupted);
    EXPECT_EQ(decoded.status, control::QueryStatus::kMalformed)
        << "trial " << trial;
  }
}

}  // namespace
}  // namespace pq::wire
