// Robustness sweeps for every wire-format parser: arbitrary truncation and
// random corruption must never crash, loop, or fabricate success where the
// checksum should catch it.
#include <gtest/gtest.h>

#include <sstream>

#include "common/rng.h"
#include "wire/headers.h"
#include "wire/telemetry.h"
#include "wire/trace_io.h"

namespace pq::wire {
namespace {

std::vector<std::uint8_t> sample_frame() {
  Packet pkt;
  pkt.flow = make_flow(77);
  pkt.size_bytes = 400;
  pkt.priority = 1;
  TelemetryHeader tele;
  tele.enq_timestamp = 123456;
  tele.deq_timedelta = 789;
  tele.enq_qdepth = 42;
  return build_eval_frame(pkt, tele);
}

TEST(WireFuzz, FrameParserSurvivesEveryTruncation) {
  const auto frame = sample_frame();
  for (std::size_t len = 0; len <= frame.size(); ++len) {
    const auto span = std::span<const std::uint8_t>(frame.data(), len);
    const auto parsed = parse_frame(span);  // must not crash
    if (len == frame.size()) {
      EXPECT_TRUE(parsed.has_value());
    }
  }
}

TEST(WireFuzz, TelemetryParserSurvivesEveryTruncation) {
  std::vector<std::uint8_t> buf;
  encode_telemetry(buf, TelemetryHeader{});
  for (std::size_t len = 0; len < buf.size(); ++len) {
    EXPECT_FALSE(
        parse_telemetry(std::span<const std::uint8_t>(buf.data(), len))
            .has_value())
        << "len=" << len;
  }
}

TEST(WireFuzz, SingleByteFlipsNeverParseAsValidWithWrongContent) {
  // IPv4 header flips must be caught by the header checksum; payload flips
  // land in the telemetry/padding, which carries no integrity by design.
  const auto frame = sample_frame();
  const std::size_t ip_start = EthernetHeader::kSize;
  for (std::size_t i = ip_start; i < ip_start + Ipv4Header::kSize; ++i) {
    for (std::uint8_t bit = 0; bit < 8; ++bit) {
      auto corrupted = frame;
      corrupted[i] ^= static_cast<std::uint8_t>(1u << bit);
      const auto parsed = parse_frame(corrupted);
      if (parsed.has_value()) {
        // The only survivable flips are those the internet checksum cannot
        // see, and there are none for single-bit errors.
        ADD_FAILURE() << "flip at byte " << i << " bit " << int(bit)
                      << " went undetected";
      }
    }
  }
}

TEST(WireFuzz, CollectorHandlesRandomGarbage) {
  TelemetryCollector col;
  Rng rng(99);
  for (int i = 0; i < 500; ++i) {
    std::vector<std::uint8_t> junk(rng.uniform_below(200));
    for (auto& b : junk) b = static_cast<std::uint8_t>(rng());
    col.ingest(junk);  // must not crash
  }
  EXPECT_EQ(col.records().size(), 0u);
  EXPECT_EQ(col.malformed_count(), 500u);
}

TEST(WireFuzz, TraceReaderSurvivesTruncationSweep) {
  std::vector<TelemetryRecord> recs(20);
  for (std::uint32_t i = 0; i < 20; ++i) {
    recs[i].flow = make_flow(i);
    recs[i].enq_timestamp = i * 100;
  }
  std::stringstream ss;
  write_trace(ss, recs);
  const std::string data = ss.str();
  for (std::size_t len = 0; len < data.size(); len += 7) {
    std::stringstream in(data.substr(0, len));
    EXPECT_THROW(read_trace(in), std::runtime_error) << "len=" << len;
  }
}

TEST(WireFuzz, TraceReaderSurvivesRandomFlips) {
  std::vector<TelemetryRecord> recs(50);
  for (std::uint32_t i = 0; i < 50; ++i) recs[i].flow = make_flow(i);
  std::stringstream ss;
  write_trace(ss, recs);
  const std::string data = ss.str();
  Rng rng(7);
  for (int trial = 0; trial < 200; ++trial) {
    std::string corrupted = data;
    corrupted[rng.uniform_below(corrupted.size())] ^=
        static_cast<char>(1 + rng.uniform_below(255));
    std::stringstream in(corrupted);
    EXPECT_THROW(read_trace(in), std::runtime_error) << "trial " << trial;
  }
}

}  // namespace
}  // namespace pq::wire
