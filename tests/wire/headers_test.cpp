#include "wire/headers.h"

#include <gtest/gtest.h>

#include "wire/bytes.h"

namespace pq::wire {
namespace {

std::vector<std::uint8_t> make_frame(const FlowId& flow,
                                     std::uint8_t priority = 0,
                                     std::uint16_t payload = 8) {
  std::vector<std::uint8_t> buf;
  EthernetHeader eth;
  encode_ethernet(buf, eth);
  Ipv4Header ip;
  ip.dscp = priority;
  ip.proto = flow.proto;
  ip.src_ip = flow.src_ip;
  ip.dst_ip = flow.dst_ip;
  const std::size_t l4 =
      flow.proto == kProtoUdp ? L4Header::kUdpSize : L4Header::kTcpSize;
  ip.total_len = static_cast<std::uint16_t>(Ipv4Header::kSize + l4 + payload);
  encode_ipv4(buf, ip);
  encode_l4(buf, flow, payload);
  buf.resize(buf.size() + payload, 0xab);
  return buf;
}

TEST(InternetChecksum, ZeroOverZeros) {
  std::vector<std::uint8_t> zeros(20, 0);
  EXPECT_EQ(internet_checksum(zeros), 0xffff);
}

TEST(InternetChecksum, RfcExampleVector) {
  // Classic RFC 1071 example words: 0x0001 0xf203 0xf4f5 0xf6f7.
  const std::uint8_t data[] = {0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7};
  EXPECT_EQ(internet_checksum(std::span<const std::uint8_t>(data, 8)),
            static_cast<std::uint16_t>(~0xddf2 & 0xffff));
}

TEST(InternetChecksum, OddLengthPadsWithZero) {
  const std::uint8_t a[] = {0x12, 0x34, 0x56};
  const std::uint8_t b[] = {0x12, 0x34, 0x56, 0x00};
  EXPECT_EQ(internet_checksum(std::span<const std::uint8_t>(a, 3)),
            internet_checksum(std::span<const std::uint8_t>(b, 4)));
}

TEST(ParseFrame, RoundTripsTcpFlow) {
  const FlowId flow = make_flow(42, kProtoTcp);
  const auto frame = make_frame(flow, 3);
  const auto parsed = parse_frame(frame);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->flow, flow);
  EXPECT_EQ(parsed->priority, 3);
  EXPECT_EQ(parsed->payload.size(), 8u);
  EXPECT_EQ(parsed->payload[0], 0xab);
}

TEST(ParseFrame, RoundTripsUdpFlow) {
  const FlowId flow = make_flow(7, kProtoUdp);
  const auto parsed = parse_frame(make_frame(flow));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->flow, flow);
}

TEST(ParseFrame, EncodedIpv4ChecksumValidates) {
  // The encoded header's checksum field must make the whole header sum to 0.
  const auto frame = make_frame(make_flow(1));
  const auto hdr = std::span<const std::uint8_t>(frame).subspan(
      EthernetHeader::kSize, Ipv4Header::kSize);
  EXPECT_EQ(internet_checksum(hdr), 0);
}

TEST(ParseFrame, RejectsCorruptedIpHeader) {
  auto frame = make_frame(make_flow(1));
  frame[EthernetHeader::kSize + 12] ^= 0xff;  // flip a source-IP byte
  EXPECT_FALSE(parse_frame(frame).has_value());
}

TEST(ParseFrame, RejectsTruncation) {
  const auto frame = make_frame(make_flow(1));
  for (std::size_t len : {std::size_t{0}, std::size_t{10},
                          EthernetHeader::kSize, EthernetHeader::kSize + 10}) {
    EXPECT_FALSE(
        parse_frame(std::span<const std::uint8_t>(frame.data(), len))
            .has_value())
        << "len=" << len;
  }
}

TEST(ParseFrame, RejectsNonIpv4EtherType) {
  auto frame = make_frame(make_flow(1));
  frame[12] = 0x86;  // IPv6 ethertype
  frame[13] = 0xdd;
  EXPECT_FALSE(parse_frame(frame).has_value());
}

TEST(ParseFrame, RejectsUnknownL4Protocol) {
  const FlowId flow{.src_ip = 1, .dst_ip = 2, .src_port = 3, .dst_port = 4,
                    .proto = 47};  // GRE
  EXPECT_FALSE(parse_frame(make_frame(flow)).has_value());
}

TEST(ByteReader, ReadsBigEndianScalars) {
  std::vector<std::uint8_t> buf;
  put_u8(buf, 0x01);
  put_u16(buf, 0x0203);
  put_u32(buf, 0x04050607);
  put_u64(buf, 0x08090a0b0c0d0e0full);
  ByteReader r(buf);
  EXPECT_EQ(r.u8(), 0x01);
  EXPECT_EQ(r.u16(), 0x0203);
  EXPECT_EQ(r.u32(), 0x04050607u);
  EXPECT_EQ(r.u64(), 0x08090a0b0c0d0e0full);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(ByteReader, OverrunSetsNotOk) {
  std::vector<std::uint8_t> buf{1, 2};
  ByteReader r(buf);
  r.u32();
  EXPECT_FALSE(r.ok());
}

}  // namespace
}  // namespace pq::wire
