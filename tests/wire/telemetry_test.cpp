#include "wire/telemetry.h"

#include <gtest/gtest.h>

namespace pq::wire {
namespace {

TelemetryHeader sample_header() {
  TelemetryHeader h;
  h.egress_port = 3;
  h.enq_timestamp = 1'000'000'123;
  h.deq_timedelta = 45'678;
  h.enq_qdepth = 12345;
  h.packet_cells = 19;
  return h;
}

TEST(TelemetryHeader, EncodeParseRoundTrip) {
  std::vector<std::uint8_t> buf;
  encode_telemetry(buf, sample_header());
  EXPECT_EQ(buf.size(), TelemetryHeader::kSize);
  const auto parsed = parse_telemetry(buf);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->egress_port, 3u);
  EXPECT_EQ(parsed->enq_timestamp, 1'000'000'123u);
  EXPECT_EQ(parsed->deq_timedelta, 45'678u);
  EXPECT_EQ(parsed->enq_qdepth, 12345u);
  EXPECT_EQ(parsed->packet_cells, 19);
  EXPECT_EQ(parsed->deq_timestamp(), 1'000'045'801u);
}

TEST(TelemetryHeader, ParseRejectsShortBuffer) {
  std::vector<std::uint8_t> buf(TelemetryHeader::kSize - 1, 0);
  EXPECT_FALSE(parse_telemetry(buf).has_value());
}

TEST(BuildEvalFrame, PadsToWireSize) {
  Packet pkt;
  pkt.flow = make_flow(5);
  pkt.size_bytes = 500;
  const auto frame = build_eval_frame(pkt, sample_header());
  // 500 B packet + the inserted 26 B telemetry header.
  EXPECT_EQ(frame.size(), 500u + TelemetryHeader::kSize);
}

TEST(BuildEvalFrame, MinimalPacketStillCarriesHeaders) {
  Packet pkt;
  pkt.flow = make_flow(6, kProtoUdp);
  pkt.size_bytes = 64;
  const auto frame = build_eval_frame(pkt, sample_header());
  // Headers exceed 64 B; the frame grows instead of truncating.
  EXPECT_GE(frame.size(),
            EthernetHeader::kSize + Ipv4Header::kSize + L4Header::kUdpSize +
                TelemetryHeader::kSize);
}

TEST(TelemetryCollector, IngestsWellFormedFrames) {
  TelemetryCollector col;
  Packet pkt;
  pkt.flow = make_flow(9);
  pkt.size_bytes = 300;
  pkt.priority = 2;
  EXPECT_TRUE(col.ingest(build_eval_frame(pkt, sample_header())));
  ASSERT_EQ(col.records().size(), 1u);
  const auto& rec = col.records()[0];
  EXPECT_EQ(rec.flow, pkt.flow);
  EXPECT_EQ(rec.enq_timestamp, 1'000'000'123u);
  EXPECT_EQ(rec.deq_timedelta, 45'678u);
  EXPECT_EQ(rec.enq_qdepth, 12345u);
  EXPECT_EQ(rec.size_bytes, 300u);
  EXPECT_EQ(col.malformed_count(), 0u);
}

TEST(TelemetryCollector, CountsMalformedFrames) {
  TelemetryCollector col;
  std::vector<std::uint8_t> junk(40, 0x5a);
  EXPECT_FALSE(col.ingest(junk));
  EXPECT_EQ(col.malformed_count(), 1u);
  EXPECT_TRUE(col.records().empty());
}

TEST(TelemetryCollector, CountsTruncatedTelemetry) {
  Packet pkt;
  pkt.flow = make_flow(9);
  pkt.size_bytes = 64;
  auto frame = build_eval_frame(pkt, sample_header());
  frame.resize(frame.size() - TelemetryHeader::kSize);  // strip telemetry
  TelemetryCollector col;
  EXPECT_FALSE(col.ingest(frame));
  EXPECT_EQ(col.malformed_count(), 1u);
}

TEST(TelemetryCollector, TakeRecordsMovesOut) {
  TelemetryCollector col;
  Packet pkt;
  pkt.flow = make_flow(1);
  pkt.size_bytes = 200;
  col.ingest(build_eval_frame(pkt, sample_header()));
  auto recs = col.take_records();
  EXPECT_EQ(recs.size(), 1u);
  EXPECT_TRUE(col.records().empty());
}

}  // namespace
}  // namespace pq::wire
