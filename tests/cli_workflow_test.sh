#!/usr/bin/env bash
# End-to-end CLI workflow: generate a trace, replay it through PrintQueue,
# save register records, and query them offline. Each stage must succeed
# and the outputs must be non-trivial.
#
# $1 is the directory holding the pq_* binaries; a build root (the ctest
# invocation passes $<TARGET_FILE_DIR:pq_gentrace>, but humans often pass
# `build`) is accepted too and resolved to its tools/ subdirectory.
set -euo pipefail

TOOLS_DIR="${1:?usage: cli_workflow_test.sh <tools-dir-or-build-dir>}"
if [[ ! -x "$TOOLS_DIR/pq_gentrace" && -x "$TOOLS_DIR/tools/pq_gentrace" ]]; then
  TOOLS_DIR="$TOOLS_DIR/tools"
fi
if [[ ! -x "$TOOLS_DIR/pq_gentrace" ]]; then
  echo "pq_gentrace not found under '$1'" >&2
  exit 2
fi
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

"$TOOLS_DIR/pq_gentrace" burst "$WORK/t.pqt" --ms 8 --seed 3 | tee "$WORK/gen.log"
grep -q "records" "$WORK/gen.log"

"$TOOLS_DIR/pq_replay" "$WORK/t.pqt" --top 3 --save-records "$WORK/t.pqr" \
  --metrics-out "$WORK/metrics.json" --metrics-prom "$WORK/metrics.prom" \
  | tee "$WORK/replay.log"
grep -q "direct culprits" "$WORK/replay.log"
grep -q "accuracy vs trace ground truth" "$WORK/replay.log"
grep -q "register records saved" "$WORK/replay.log"

# --metrics-out / --metrics-prom produce well-formed exports (the JSON is
# the stub '{"metrics":[]}' in PQ_METRICS=OFF builds, which also passes).
grep -q '"metrics"' "$WORK/metrics.json"
test -f "$WORK/metrics.prom"
if grep -q '"name"' "$WORK/metrics.json"; then
  grep -q 'pq_core_packets_seen_total' "$WORK/metrics.json"
  grep -q '# TYPE pq_core_packets_seen_total counter' "$WORK/metrics.prom"
fi

"$TOOLS_DIR/pq_offline" "$WORK/t.pqr" windows 0 2000000 4000000 --top 3 \
  | tee "$WORK/offline.log"
grep -q "per-flow packet counts" "$WORK/offline.log"

"$TOOLS_DIR/pq_offline" "$WORK/t.pqr" monitor 0 3000000 \
  | tee "$WORK/monitor.log"
grep -q "original culprits" "$WORK/monitor.log"

# Corrupted input is rejected, not crashed on.
head -c 100 "$WORK/t.pqt" > "$WORK/broken.pqt"
if "$TOOLS_DIR/pq_replay" "$WORK/broken.pqt" 2>/dev/null; then
  echo "truncated trace was accepted" >&2
  exit 1
fi

echo "cli workflow ok"
