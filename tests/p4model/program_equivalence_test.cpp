// Equivalence between the stage-accurate P4 program model and the
// behavioural data structures: after arbitrary traffic, the register
// contents must match cell for cell (flow signatures and cycle IDs for the
// windows; entries, sequence numbers and top pointer for the monitor).
// Also verifies the architectural constraints: stage budget and the
// one-register-touch-per-packet discipline.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/queue_monitor.h"
#include "core/time_windows.h"
#include "p4model/printqueue_program.h"

namespace pq::p4 {
namespace {

ProgramParams make_params(std::uint32_t alpha, std::uint32_t k,
                          std::uint32_t T) {
  ProgramParams p;
  p.windows.m0 = 5;
  p.windows.alpha = alpha;
  p.windows.k = k;
  p.windows.num_windows = T;
  p.monitor_levels = 501;
  return p;
}

struct Event {
  FlowId flow;
  Timestamp deq_ts;
  std::uint32_t depth_after;
};

std::vector<Event> random_traffic(std::uint64_t seed, int n) {
  Rng rng(seed);
  std::vector<Event> events;
  Timestamp t = 0;
  std::uint32_t depth = 100;
  for (int i = 0; i < n; ++i) {
    t += 16 + rng.uniform_below(64);
    depth = static_cast<std::uint32_t>(std::clamp<std::int64_t>(
        static_cast<std::int64_t>(depth) +
            static_cast<std::int64_t>(rng.uniform_below(21)) - 10,
        0, 499));
    events.push_back(
        {make_flow(static_cast<std::uint32_t>(rng.uniform_below(64))), t,
         depth});
  }
  return events;
}

class EquivalenceTest
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, std::uint32_t,
                                                 std::uint32_t>> {};

TEST_P(EquivalenceTest, RegistersMatchBehaviouralModel) {
  const auto [alpha, k, T] = GetParam();
  const auto params = make_params(alpha, k, T);

  PrintQueueProgram program(params);
  core::TimeWindowSet behavioural(params.windows);
  core::QueueMonitorParams mp;
  mp.max_depth_cells = params.monitor_levels - 1;
  core::QueueMonitor monitor(mp);

  for (const auto& ev : random_traffic(7 + alpha + k + T, 20000)) {
    Phv phv;
    phv.flow = ev.flow;
    phv.enq_timestamp = ev.deq_ts;  // delta 0: deq == enq
    phv.enq_qdepth = ev.depth_after;
    phv.packet_cells = 0;
    program.process(phv);

    behavioural.on_packet(0, ev.flow, ev.deq_ts);
    monitor.on_packet(0, ev.flow, ev.depth_after);
  }

  // Time windows: every occupied behavioural cell matches the program's
  // register lanes; unoccupied cells are still all-zero lanes.
  const auto state = behavioural.read_bank(behavioural.active_bank(), 0);
  for (std::uint32_t w = 0; w < T; ++w) {
    const auto& regs = program.window(w);
    for (std::uint64_t j = 0; j < state[w].size(); ++j) {
      if (state[w][j].occupied) {
        EXPECT_EQ(regs.flow_sigs.peek(j), flow_signature(state[w][j].flow))
            << "window " << w << " cell " << j;
        EXPECT_EQ(regs.cycle_ids.peek(j), state[w][j].cycle_id)
            << "window " << w << " cell " << j;
      } else {
        EXPECT_EQ(regs.flow_sigs.peek(j), 0u)
            << "window " << w << " cell " << j;
      }
    }
  }

  // Queue monitor: entries, sequence numbers, top pointer.
  const auto mstate = monitor.read_bank(monitor.active_bank(), 0);
  EXPECT_EQ(program.monitor().top.peek(0), mstate.top);
  for (std::uint32_t lvl = 0; lvl < mstate.entries.size(); ++lvl) {
    const auto& e = mstate.entries[lvl];
    if (e.inc.valid) {
      EXPECT_EQ(program.monitor().inc_flow.peek(lvl),
                flow_signature(e.inc.flow))
          << "level " << lvl;
      EXPECT_EQ(program.monitor().inc_seq.peek(lvl), e.inc.seq)
          << "level " << lvl;
    }
    if (e.dec.valid) {
      EXPECT_EQ(program.monitor().dec_flow.peek(lvl),
                flow_signature(e.dec.flow))
          << "level " << lvl;
      EXPECT_EQ(program.monitor().dec_seq.peek(lvl), e.dec.seq)
          << "level " << lvl;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Configs, EquivalenceTest,
    ::testing::Values(std::make_tuple(1u, 6u, 3u), std::make_tuple(1u, 8u, 4u),
                      std::make_tuple(2u, 6u, 3u), std::make_tuple(2u, 8u, 5u),
                      std::make_tuple(3u, 7u, 4u)),
    [](const auto& tpi) {
      // += rather than operator+ chains: GCC 12 -Wrestrict false positive.
      std::string n = "a";
      n += std::to_string(std::get<0>(tpi.param));
      n += "_k";
      n += std::to_string(std::get<1>(tpi.param));
      n += "_T";
      n += std::to_string(std::get<2>(tpi.param));
      return n;
    });

TEST(P4Program, StageBudgetMatchesPaper) {
  PrintQueueProgram program(make_params(2, 12, 4));
  EXPECT_EQ(program.window_stage_count(), 12u);  // 4 prep + 2*4
  EXPECT_EQ(program.monitor_stage_count(), 6u);
}

TEST(P4Program, RejectsWrap32) {
  ProgramParams p = make_params(1, 6, 3);
  p.windows.wrap32 = true;
  EXPECT_THROW(PrintQueueProgram{p}, std::invalid_argument);
}

TEST(P4Program, RegisterDisciplineRejectsDoubleTouch) {
  RegisterArray<std::uint64_t> reg("test", 8);
  reg.exchange(0, 1, /*epoch=*/1);
  EXPECT_THROW(reg.exchange(1, 2, /*epoch=*/1), std::logic_error);
  EXPECT_NO_THROW(reg.exchange(1, 2, /*epoch=*/2));
}

TEST(P4Program, PacketsProcessedCounts) {
  PrintQueueProgram program(make_params(1, 6, 3));
  Phv phv;
  phv.flow = make_flow(1);
  phv.enq_timestamp = 100;
  program.process(phv);
  EXPECT_EQ(program.packets_processed(), 1u);
}

}  // namespace
}  // namespace pq::p4
