#include "traffic/case_study.h"

#include <gtest/gtest.h>

namespace pq::traffic {
namespace {

CaseStudyConfig quick_config() {
  CaseStudyConfig cfg;
  cfg.duration_ns = 120'000'000;  // 120 ms keeps the test fast
  return cfg;
}

class CaseStudyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    sim::PortConfig pc;
    pc.line_rate_gbps = 10.0;
    // The burst parks ~24k cells in the queue (9 Gb/s background + 4 Gb/s
    // burst for 5 ms); the buffer must absorb it without tail drops or the
    // background AIMD backs off and drains the queue unrealistically fast.
    pc.capacity_cells = 30000;
    port_ = std::make_unique<sim::EgressPort>(pc);
    result_ = run_case_study(quick_config(), *port_);
  }
  std::unique_ptr<sim::EgressPort> port_;
  CaseStudyResult result_;
};

TEST_F(CaseStudyTest, BurstLastsAboutFiveMilliseconds) {
  const auto cfg = quick_config();
  const auto burst_span = result_.burst_end_ns - cfg.burst_start_ns;
  EXPECT_GT(burst_span, 4'000'000u);
  EXPECT_LT(burst_span, 8'000'000u);
}

TEST_F(CaseStudyTest, BurstDrivesQueueDeep) {
  const auto cfg = quick_config();
  const auto peak = port_->depth_series().peak_depth(
      cfg.burst_start_ns, result_.burst_end_ns + 2'000'000);
  EXPECT_GT(peak, 15'000u);  // the paper's Fig. 16(a) reaches ~20k cells
}

TEST_F(CaseStudyTest, QueuePersistsLongAfterBurst) {
  // The central observation: queuing outlives the burst by a large factor.
  const auto cfg = quick_config();
  const auto burst_span = result_.burst_end_ns - cfg.burst_start_ns;
  const auto regime_span = result_.regime_end_ns - cfg.burst_start_ns;
  EXPECT_GT(regime_span, 5 * burst_span);
}

TEST_F(CaseStudyTest, QueueWasShallowBeforeBurst) {
  const auto cfg = quick_config();
  EXPECT_LT(port_->depth_series().peak_depth(
                cfg.burst_start_ns / 2, cfg.burst_start_ns - 1'000'000),
            5'000u);
}

TEST_F(CaseStudyTest, AllThreeFlowsDeliverTraffic) {
  std::uint64_t bg = 0, burst = 0, tcp = 0;
  for (const auto& r : port_->records()) {
    if (r.flow == result_.background_flow) ++bg;
    if (r.flow == result_.burst_flow) ++burst;
    if (r.flow == result_.new_tcp_flow) ++tcp;
  }
  EXPECT_GT(bg, 10'000u);
  EXPECT_GT(burst, 9'000u);  // most of the 10k datagrams survive
  EXPECT_GT(tcp, 1'000u);
}

TEST_F(CaseStudyTest, NewTcpExperiencesHighDelay) {
  // New TCP packets arriving into the standing queue must see large
  // queuing delays shortly after their start.
  const auto cfg = quick_config();
  Duration max_delay = 0;
  for (const auto& r : port_->records()) {
    if (r.flow == result_.new_tcp_flow &&
        r.enq_timestamp < cfg.new_tcp_start_ns + 10'000'000) {
      max_delay = std::max(max_delay, r.deq_timedelta);
    }
  }
  EXPECT_GT(max_delay, 100'000u);  // >100 us of queuing
}

TEST_F(CaseStudyTest, BurstPacketsGoneBeforeNewTcpArrives) {
  const auto cfg = quick_config();
  Timestamp last_burst_deq = 0;
  for (const auto& r : port_->records()) {
    if (r.flow == result_.burst_flow) {
      last_burst_deq = std::max(last_burst_deq, r.deq_timestamp());
    }
  }
  EXPECT_LT(last_burst_deq, cfg.new_tcp_start_ns);
}

}  // namespace
}  // namespace pq::traffic
