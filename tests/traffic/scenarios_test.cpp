#include "traffic/scenarios.h"

#include <gtest/gtest.h>

#include <unordered_set>

namespace pq::traffic {
namespace {

TEST(Microburst, EmitsRequestedPacketsAtRate) {
  MicroburstConfig cfg;
  cfg.start = 1000;
  cfg.rate_gbps = 4.0;
  cfg.packets = 100;
  cfg.packet_bytes = 250;  // 500 ns spacing at 4 Gb/s
  Rng rng(1);
  const auto pkts = generate_microburst(cfg, rng);
  ASSERT_EQ(pkts.size(), 100u);
  EXPECT_EQ(pkts.front().arrival_ns, 1000u);
  for (std::size_t i = 1; i < pkts.size(); ++i) {
    EXPECT_EQ(pkts[i].arrival_ns - pkts[i - 1].arrival_ns, 500u);
  }
}

TEST(Microburst, UsesConfiguredFlowPool) {
  MicroburstConfig cfg;
  cfg.flows = 4;
  cfg.packets = 400;
  Rng rng(2);
  const auto pkts = generate_microburst(cfg, rng);
  std::unordered_set<FlowId> flows;
  for (const auto& p : pkts) flows.insert(p.flow);
  EXPECT_LE(flows.size(), 4u);
  EXPECT_GE(flows.size(), 2u);
}

TEST(Microburst, DefaultsToUdp) {
  MicroburstConfig cfg;
  cfg.packets = 5;
  Rng rng(3);
  for (const auto& p : generate_microburst(cfg, rng)) {
    EXPECT_EQ(p.flow.proto, 17);
  }
}

TEST(Microburst, DurationMatchesPaperScale) {
  // 2000 MTU packets at 40 Gb/s last 600 us -- a paper-scale microburst is
  // shorter; verify the 10s-to-100s-of-microseconds regime is reachable.
  MicroburstConfig cfg;
  cfg.packets = 1000;
  cfg.rate_gbps = 40.0;
  cfg.packet_bytes = 1500;
  Rng rng(4);
  const auto pkts = generate_microburst(cfg, rng);
  const auto span = pkts.back().arrival_ns - pkts.front().arrival_ns;
  EXPECT_GT(span, 100'000u);
  EXPECT_LT(span, 500'000u);
}

TEST(Incast, AllSendersStartWithinJitter) {
  IncastConfig cfg;
  cfg.start = 5000;
  cfg.senders = 16;
  cfg.sync_jitter_ns = 1000;
  Rng rng(5);
  const auto pkts = generate_incast(cfg, rng);
  std::unordered_map<FlowId, Timestamp> first_arrival;
  for (const auto& p : pkts) {
    auto [it, inserted] = first_arrival.emplace(p.flow, p.arrival_ns);
    if (!inserted) it->second = std::min(it->second, p.arrival_ns);
  }
  EXPECT_EQ(first_arrival.size(), 16u);
  for (const auto& [f, t] : first_arrival) {
    EXPECT_GE(t, 5000u);
    EXPECT_LT(t, 6000u);
  }
}

TEST(Incast, EachSenderSendsItsBytes) {
  IncastConfig cfg;
  cfg.senders = 8;
  cfg.bytes_per_sender = 10'000;
  Rng rng(6);
  const auto pkts = generate_incast(cfg, rng);
  std::unordered_map<FlowId, std::uint64_t> bytes;
  for (const auto& p : pkts) bytes[p.flow] += p.size_bytes;
  ASSERT_EQ(bytes.size(), 8u);
  for (const auto& [f, b] : bytes) {
    EXPECT_GE(b, 10'000u);
    EXPECT_LT(b, 10'100u);  // only the 64 B floor can add slack
  }
}

TEST(Probe, ConstantRateAndFlow) {
  ProbeConfig cfg;
  cfg.start = 0;
  cfg.duration_ns = 1'000'000;
  cfg.rate_gbps = 0.1;
  cfg.packet_bytes = 250;  // 20 us gap at 0.1 Gb/s
  const auto pkts = generate_probe(cfg);
  ASSERT_GT(pkts.size(), 10u);
  for (std::size_t i = 1; i < pkts.size(); ++i) {
    EXPECT_EQ(pkts[i].arrival_ns - pkts[i - 1].arrival_ns, 20'000u);
    EXPECT_EQ(pkts[i].flow, pkts[0].flow);
  }
}

}  // namespace
}  // namespace pq::traffic
