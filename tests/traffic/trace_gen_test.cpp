#include "traffic/trace_gen.h"

#include <gtest/gtest.h>

#include <unordered_map>
#include <unordered_set>

#include "traffic/distributions.h"

namespace pq::traffic {
namespace {

double offered_load_gbps(const std::vector<Packet>& pkts) {
  if (pkts.size() < 2) return 0.0;
  std::uint64_t bytes = 0;
  for (const auto& p : pkts) bytes += p.size_bytes;
  const double span =
      static_cast<double>(pkts.back().arrival_ns - pkts.front().arrival_ns);
  return static_cast<double>(bytes) * 8.0 / span;
}

TEST(Distributions, WebSearchMeanIsMegabytesScale) {
  const double mean = web_search_flow_sizes().mean();
  EXPECT_GT(mean, 1.0e6);
  EXPECT_LT(mean, 4.0e6);
}

TEST(Distributions, DataMiningIsMiceDominatedWithElephants) {
  const auto& dm = data_mining_flow_sizes();
  EXPECT_LT(dm.quantile(0.8), 11'000.0);   // 80% under ~10 kB
  EXPECT_GT(dm.quantile(0.99), 1.0e8);     // elephants in the tail
}

TEST(Distributions, NextSegmentIsMtuThenTail) {
  EXPECT_EQ(next_segment_bytes(10'000), kMtuBytes);
  EXPECT_EQ(next_segment_bytes(1500), kMtuBytes);
  EXPECT_EQ(next_segment_bytes(700), 700u);
  EXPECT_EQ(next_segment_bytes(10), kMinPacketBytes);  // floors at 64 B
}

TEST(UwTrace, RejectsBadConfig) {
  PacketTraceConfig cfg;
  cfg.avg_load = 0.0;
  EXPECT_THROW(generate_uw_trace(cfg), std::invalid_argument);
}

TEST(UwTrace, IsSortedWithSequentialIds) {
  PacketTraceConfig cfg;
  cfg.duration_ns = 2'000'000;
  const auto pkts = generate_uw_trace(cfg);
  ASSERT_GT(pkts.size(), 1000u);
  for (std::size_t i = 1; i < pkts.size(); ++i) {
    EXPECT_GE(pkts[i].arrival_ns, pkts[i - 1].arrival_ns);
    EXPECT_EQ(pkts[i].id, pkts[i - 1].id + 1);
  }
}

TEST(UwTrace, AverageLoadNearTarget) {
  PacketTraceConfig cfg;
  cfg.duration_ns = 50'000'000;
  cfg.avg_load = 0.73;
  const auto pkts = generate_uw_trace(cfg);
  EXPECT_NEAR(offered_load_gbps(pkts), 7.3, 1.2);
}

TEST(UwTrace, SmallPacketsDominate) {
  PacketTraceConfig cfg;
  cfg.duration_ns = 5'000'000;
  const auto pkts = generate_uw_trace(cfg);
  std::uint64_t bytes = 0;
  for (const auto& p : pkts) bytes += p.size_bytes;
  const double mean = static_cast<double>(bytes) /
                      static_cast<double>(pkts.size());
  EXPECT_GT(mean, 80.0);
  EXPECT_LT(mean, 160.0);  // ~100 B average, like the UW trace
}

TEST(UwTrace, PacketRateMatchesPaperOrder) {
  // The paper reports ~9.1 Mpps at 10 Gb/s for UW; that is ~0.009 pkts/ns.
  PacketTraceConfig cfg;
  cfg.duration_ns = 20'000'000;
  const auto pkts = generate_uw_trace(cfg);
  const double rate_mpps = static_cast<double>(pkts.size()) /
                           (static_cast<double>(cfg.duration_ns) / 1e3);
  EXPECT_GT(rate_mpps, 5.0);
  EXPECT_LT(rate_mpps, 12.0);
}

TEST(UwTrace, LongTailedFlowPopularity) {
  PacketTraceConfig cfg;
  cfg.duration_ns = 20'000'000;
  const auto pkts = generate_uw_trace(cfg);
  std::unordered_map<FlowId, std::uint64_t> counts;
  for (const auto& p : pkts) ++counts[p.flow];
  std::vector<std::uint64_t> sorted;
  for (const auto& [f, c] : counts) sorted.push_back(c);
  std::sort(sorted.rbegin(), sorted.rend());
  ASSERT_GT(sorted.size(), 100u);
  // 100th-largest flow well under 3% of the largest (paper: <1% over the
  // full multi-second trace; short spans are a bit noisier).
  EXPECT_LT(static_cast<double>(sorted[99]),
            0.03 * static_cast<double>(sorted[0]));
}

TEST(UwTrace, DeterministicPerSeed) {
  PacketTraceConfig cfg;
  cfg.duration_ns = 1'000'000;
  const auto a = generate_uw_trace(cfg);
  const auto b = generate_uw_trace(cfg);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].arrival_ns, b[i].arrival_ns);
    EXPECT_EQ(a[i].flow, b[i].flow);
  }
  cfg.seed = 99;
  const auto c = generate_uw_trace(cfg);
  bool differs = a.size() != c.size();
  for (std::size_t i = 0; !differs && i < std::min(a.size(), c.size()); ++i) {
    differs = a[i].arrival_ns != c[i].arrival_ns || !(a[i].flow == c[i].flow);
  }
  EXPECT_TRUE(differs);
}

TEST(UwTrace, BurstyModeCreatesRateWaves) {
  PacketTraceConfig cfg;
  cfg.duration_ns = 20'000'000;
  cfg.bursty = true;
  const auto pkts = generate_uw_trace(cfg);
  // Count packets per 200 us bucket; bursty traffic must show high variance.
  std::vector<double> buckets(100, 0.0);
  for (const auto& p : pkts) {
    buckets[std::min<std::size_t>(p.arrival_ns / 200'000, 99)] += 1.0;
  }
  double mean = 0, var = 0;
  for (double b : buckets) mean += b;
  mean /= 100;
  for (double b : buckets) var += (b - mean) * (b - mean);
  var /= 99;
  // Poisson would give var ~ mean; on/off modulation gives much more.
  EXPECT_GT(var, 3.0 * mean);
}

TEST(FlowTrace, RequiresDistribution) {
  FlowTraceConfig cfg;
  EXPECT_THROW(generate_flow_trace(cfg), std::invalid_argument);
}

TEST(FlowTrace, IsSortedAndSegmented) {
  FlowTraceConfig cfg;
  cfg.flow_sizes = &web_search_flow_sizes();
  cfg.duration_ns = 20'000'000;
  const auto pkts = generate_flow_trace(cfg);
  ASSERT_GT(pkts.size(), 100u);
  for (std::size_t i = 1; i < pkts.size(); ++i) {
    EXPECT_GE(pkts[i].arrival_ns, pkts[i - 1].arrival_ns);
  }
  for (const auto& p : pkts) {
    EXPECT_GE(p.size_bytes, kMinPacketBytes);
    EXPECT_LE(p.size_bytes, kMtuBytes);
  }
}

TEST(FlowTrace, MostBytesInMtuSegments) {
  FlowTraceConfig cfg;
  cfg.flow_sizes = &web_search_flow_sizes();
  cfg.duration_ns = 30'000'000;
  const auto pkts = generate_flow_trace(cfg);
  std::uint64_t mtu = 0;
  for (const auto& p : pkts) mtu += (p.size_bytes == kMtuBytes);
  EXPECT_GT(static_cast<double>(mtu) / static_cast<double>(pkts.size()), 0.9);
}

TEST(FlowTrace, LoadTracksTarget) {
  FlowTraceConfig cfg;
  cfg.flow_sizes = &web_search_flow_sizes();
  cfg.duration_ns = 30'000'000;
  cfg.avg_load = 0.9;
  cfg.bursty = false;  // measure the pacing itself, not phase luck
  const auto pkts = generate_flow_trace(cfg);
  EXPECT_NEAR(offered_load_gbps(pkts), 9.0, 0.7);
}

TEST(FlowTrace, BurstyModulationPreservesAverageLoad) {
  FlowTraceConfig cfg;
  cfg.flow_sizes = &web_search_flow_sizes();
  cfg.duration_ns = 200'000'000;  // long enough to average many phases
  cfg.avg_load = 0.9;
  const auto pkts = generate_flow_trace(cfg);
  EXPECT_NEAR(offered_load_gbps(pkts), 9.0, 1.8);
}

TEST(FlowTrace, PacketRateMatchesPaperOrder) {
  // Paper Section 7.1: WS/DM run at ~0.84 Mpps (near-MTU packets on a
  // 10 Gb/s link).
  FlowTraceConfig cfg;
  cfg.flow_sizes = &web_search_flow_sizes();
  cfg.duration_ns = 30'000'000;
  const auto pkts = generate_flow_trace(cfg);
  const double mpps = static_cast<double>(pkts.size()) /
                      (static_cast<double>(cfg.duration_ns) / 1e3);
  EXPECT_GT(mpps, 0.5);
  EXPECT_LT(mpps, 1.3);
}

TEST(FlowTrace, ConcurrentFlowChurnReplacesFinishedMice) {
  // The data-mining mix is mice-dominated: over a modest horizon the pool
  // must have churned through many more flows than its size.
  FlowTraceConfig cfg;
  cfg.flow_sizes = &data_mining_flow_sizes();
  cfg.duration_ns = 20'000'000;
  cfg.concurrent_flows = 16;
  const auto pkts = generate_flow_trace(cfg);
  std::unordered_set<FlowId> flows;
  for (const auto& p : pkts) flows.insert(p.flow);
  EXPECT_GT(flows.size(), 100u);
}

TEST(FlowTrace, ElephantsPersistAcrossTheTrace) {
  // Web-search elephants (multi-MB at ~1 MB/s effective share) span the
  // whole excerpt, so some flow must appear in both halves.
  FlowTraceConfig cfg;
  cfg.flow_sizes = &web_search_flow_sizes();
  cfg.duration_ns = 20'000'000;
  const auto pkts = generate_flow_trace(cfg);
  std::unordered_set<FlowId> first_half, both;
  for (const auto& p : pkts) {
    if (p.arrival_ns < cfg.duration_ns / 2) {
      first_half.insert(p.flow);
    } else if (first_half.contains(p.flow)) {
      both.insert(p.flow);
    }
  }
  EXPECT_GT(both.size(), 3u);
}

TEST(GenerateTrace, AllThreeKindsProduceTraffic) {
  for (auto kind : {TraceKind::kUW, TraceKind::kWS, TraceKind::kDM}) {
    const auto pkts = generate_trace(kind, 10'000'000, 1);
    EXPECT_GT(pkts.size(), 100u) << static_cast<int>(kind);
  }
}

TEST(MergeTraces, InterleavesAndRenumbers) {
  std::vector<Packet> a(3), b(2);
  a[0].arrival_ns = 10;
  a[1].arrival_ns = 30;
  a[2].arrival_ns = 50;
  b[0].arrival_ns = 20;
  b[1].arrival_ns = 40;
  const auto merged = merge_traces({a, b});
  ASSERT_EQ(merged.size(), 5u);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(merged[i].arrival_ns, (i + 1) * 10);
    EXPECT_EQ(merged[i].id, i + 1);
  }
}

TEST(PaperParams, MatchSection71) {
  const auto uw = paper_params(TraceKind::kUW);
  EXPECT_EQ(uw.m0, 6u);
  EXPECT_EQ(uw.alpha, 2u);
  const auto ws = paper_params(TraceKind::kWS);
  EXPECT_EQ(ws.m0, 10u);
  EXPECT_EQ(ws.alpha, 1u);
  EXPECT_EQ(ws.k, 12u);
  EXPECT_EQ(ws.num_windows, 4u);
}

}  // namespace
}  // namespace pq::traffic
