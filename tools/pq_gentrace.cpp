// pq_gentrace — generate a workload, run it through the simulated egress
// port, and store the resulting telemetry records to a trace file (the
// offline-analysis input format, mirroring the paper artifact's
// DPDK-collected logs).
//
// Usage:
//   pq_gentrace <uw|ws|dm|burst|casestudy> <output.pqt>
//               [--ms N] [--seed S] [--rate GBPS] [--buffer CELLS]
//               [--stream] [--port P]
//
// `--stream` writes the self-delimiting frame-per-record format pq_serve
// tails (append_record_frame) instead of the one-shot trace bundle;
// `--port P` rewrites every record's egress port (the simulated port is
// single-ported; serving tests want distinct port IDs).
//
// The `topology` kind is the network-wide variant (docs/NETWORK.md): it
// builds a leaf-spine fabric and writes one trace file PER SOURCE HOST
// (<output>.host<N>.pqt) of pre-switch arrivals — egress_port carries the
// source host id and deq_timedelta is zero — whose 5-tuples are
// source-port-searched so consecutive flows from each host ECMP-hash onto
// distinct spine paths (traffic::flow_on_path).
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "net/topology.h"
#include "sim/egress_port.h"
#include "traffic/case_study.h"
#include "traffic/net_scenarios.h"
#include "traffic/scenarios.h"
#include "traffic/trace_gen.h"
#include "wire/trace_io.h"

namespace {

[[noreturn]] void usage() {
  std::fprintf(stderr,
               "usage: pq_gentrace <uw|ws|dm|burst|casestudy> <output.pqt>\n"
               "                   [--ms N] [--seed S] [--rate GBPS]\n"
               "                   [--buffer CELLS] [--stream] [--port P]\n"
               "       pq_gentrace topology <output-prefix>\n"
               "                   [--ms N] [--leaves L] [--spines S]\n"
               "                   [--hosts H] [--flows F] [--gbps G]\n");
  std::exit(2);
}

double arg_double(int argc, char** argv, const char* name, double dflt) {
  for (int i = 3; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return std::atof(argv[i + 1]);
  }
  return dflt;
}

bool arg_flag(int argc, char** argv, const char* name) {
  for (int i = 3; i < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return true;
  }
  return false;
}

}  // namespace

namespace {

/// The `topology` kind: per-source-host arrival traces over a leaf-spine
/// fabric, flows pinned to distinct ECMP paths.
int run_topology_mode(int argc, char** argv, const std::string& out_prefix,
                      pq::Duration duration) {
  using namespace pq;
  net::LeafSpineParams lsp;
  lsp.leaves =
      static_cast<std::uint32_t>(arg_double(argc, argv, "--leaves", 2.0));
  lsp.spines =
      static_cast<std::uint32_t>(arg_double(argc, argv, "--spines", 2.0));
  lsp.hosts_per_leaf =
      static_cast<std::uint32_t>(arg_double(argc, argv, "--hosts", 2.0));
  const net::Topology topo = net::make_leaf_spine(lsp);
  const auto flows_per_host =
      static_cast<std::uint32_t>(arg_double(argc, argv, "--flows", 4.0));
  const double gbps = arg_double(argc, argv, "--gbps", 0.5);

  for (const net::HostConfig& src : topo.hosts) {
    std::vector<wire::TelemetryRecord> records;
    std::uint64_t next_id = 0;
    for (std::uint32_t f = 0; f < flows_per_host; ++f) {
      // A cross-rack destination, cycling over the other racks' hosts.
      std::uint32_t dst = (src.id + 1 + f) % topo.hosts.size();
      while (topo.hosts[dst].attach_switch == src.attach_switch) {
        dst = (dst + 1) % topo.hosts.size();
      }
      // Pin consecutive flows to distinct members of the equal-cost set.
      const auto& set = topo.route_ports(src.attach_switch, dst);
      FlowId base;
      base.src_ip = src.ip;
      base.dst_ip = topo.hosts[dst].ip;
      base.src_port = static_cast<std::uint16_t>(10000 + 131 * f);
      base.dst_port = 5001;
      base.proto = 6;
      const FlowId flow =
          traffic::flow_on_path(topo, src.attach_switch, dst, base,
                                set[f % set.size()]);
      for (const Packet& pkt :
           traffic::paced_flow(flow, 0, duration, gbps, kMtuBytes)) {
        wire::TelemetryRecord r;
        r.flow = pkt.flow;
        r.egress_port = src.id;  // source-host marker, not a switch port
        r.size_bytes = pkt.size_bytes;
        r.enq_timestamp = pkt.arrival_ns;
        r.packet_id = next_id++;
        records.push_back(r);
      }
    }
    std::sort(records.begin(), records.end(),
              [](const wire::TelemetryRecord& a,
                 const wire::TelemetryRecord& b) {
                return a.enq_timestamp < b.enq_timestamp;
              });
    const std::string path =
        out_prefix + ".host" + std::to_string(src.id) + ".pqt";
    wire::write_trace_file(path, records);
    std::printf("%s: %zu arrivals, %u flows on %u-spine ECMP\n", path.c_str(),
                records.size(), flows_per_host, lsp.spines);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pq;
  if (argc < 3) usage();
  const std::string kind = argv[1];
  const std::string out_path = argv[2];
  const double ms = arg_double(argc, argv, "--ms", 30.0);
  const auto seed =
      static_cast<std::uint64_t>(arg_double(argc, argv, "--seed", 1.0));
  const auto duration = static_cast<Duration>(ms * 1e6);

  if (kind == "topology") {
    return run_topology_mode(argc, argv, out_path, duration);
  }

  sim::PortConfig port_cfg;
  port_cfg.line_rate_gbps = arg_double(argc, argv, "--rate", 10.0);
  port_cfg.capacity_cells = static_cast<std::uint32_t>(
      arg_double(argc, argv, "--buffer", 25000.0));
  sim::EgressPort port(port_cfg);

  if (kind == "uw" || kind == "ws" || kind == "dm") {
    const auto tk = kind == "uw"   ? traffic::TraceKind::kUW
                    : kind == "ws" ? traffic::TraceKind::kWS
                                   : traffic::TraceKind::kDM;
    port.run(traffic::generate_trace(tk, duration, seed));
  } else if (kind == "burst") {
    Rng rng(seed);
    traffic::PacketTraceConfig bg;
    bg.duration_ns = duration;
    bg.avg_load = 0.6;
    bg.bursty = false;
    bg.seed = seed;
    traffic::MicroburstConfig mb;
    mb.start = duration / 3;
    mb.rate_gbps = 30.0;
    mb.packets = 4000;
    port.run(traffic::merge_traces({traffic::generate_uw_trace(bg),
                                    traffic::generate_microburst(mb, rng)}));
  } else if (kind == "casestudy") {
    traffic::CaseStudyConfig cs;
    cs.duration_ns = std::max<Duration>(duration, 100'000'000);
    cs.seed = seed;
    run_case_study(cs, port);
  } else {
    usage();
  }

  std::vector<wire::TelemetryRecord> records = port.records();
  const double port_override = arg_double(argc, argv, "--port", -1.0);
  if (port_override >= 0.0) {
    for (auto& r : records) {
      r.egress_port = static_cast<std::uint32_t>(port_override);
    }
  }
  if (arg_flag(argc, argv, "--stream")) {
    wire::write_stream_file(out_path, records);
  } else {
    wire::write_trace_file(out_path, records);
  }
  std::printf("%s: %zu records (%llu dropped), peak depth %u cells, "
              "span %.2f ms\n",
              out_path.c_str(), port.records().size(),
              static_cast<unsigned long long>(port.stats().dropped),
              port.stats().peak_depth_cells,
              static_cast<double>(port.stats().last_departure) / 1e6);
  return 0;
}
