// pq_gentrace — generate a workload, run it through the simulated egress
// port, and store the resulting telemetry records to a trace file (the
// offline-analysis input format, mirroring the paper artifact's
// DPDK-collected logs).
//
// Usage:
//   pq_gentrace <uw|ws|dm|burst|casestudy> <output.pqt>
//               [--ms N] [--seed S] [--rate GBPS] [--buffer CELLS]
//               [--stream] [--port P]
//
// `--stream` writes the self-delimiting frame-per-record format pq_serve
// tails (append_record_frame) instead of the one-shot trace bundle;
// `--port P` rewrites every record's egress port (the simulated port is
// single-ported; serving tests want distinct port IDs).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "sim/egress_port.h"
#include "traffic/case_study.h"
#include "traffic/scenarios.h"
#include "traffic/trace_gen.h"
#include "wire/trace_io.h"

namespace {

[[noreturn]] void usage() {
  std::fprintf(stderr,
               "usage: pq_gentrace <uw|ws|dm|burst|casestudy> <output.pqt>\n"
               "                   [--ms N] [--seed S] [--rate GBPS]\n"
               "                   [--buffer CELLS] [--stream] [--port P]\n");
  std::exit(2);
}

double arg_double(int argc, char** argv, const char* name, double dflt) {
  for (int i = 3; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return std::atof(argv[i + 1]);
  }
  return dflt;
}

bool arg_flag(int argc, char** argv, const char* name) {
  for (int i = 3; i < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return true;
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pq;
  if (argc < 3) usage();
  const std::string kind = argv[1];
  const std::string out_path = argv[2];
  const double ms = arg_double(argc, argv, "--ms", 30.0);
  const auto seed =
      static_cast<std::uint64_t>(arg_double(argc, argv, "--seed", 1.0));
  const auto duration = static_cast<Duration>(ms * 1e6);

  sim::PortConfig port_cfg;
  port_cfg.line_rate_gbps = arg_double(argc, argv, "--rate", 10.0);
  port_cfg.capacity_cells = static_cast<std::uint32_t>(
      arg_double(argc, argv, "--buffer", 25000.0));
  sim::EgressPort port(port_cfg);

  if (kind == "uw" || kind == "ws" || kind == "dm") {
    const auto tk = kind == "uw"   ? traffic::TraceKind::kUW
                    : kind == "ws" ? traffic::TraceKind::kWS
                                   : traffic::TraceKind::kDM;
    port.run(traffic::generate_trace(tk, duration, seed));
  } else if (kind == "burst") {
    Rng rng(seed);
    traffic::PacketTraceConfig bg;
    bg.duration_ns = duration;
    bg.avg_load = 0.6;
    bg.bursty = false;
    bg.seed = seed;
    traffic::MicroburstConfig mb;
    mb.start = duration / 3;
    mb.rate_gbps = 30.0;
    mb.packets = 4000;
    port.run(traffic::merge_traces({traffic::generate_uw_trace(bg),
                                    traffic::generate_microburst(mb, rng)}));
  } else if (kind == "casestudy") {
    traffic::CaseStudyConfig cs;
    cs.duration_ns = std::max<Duration>(duration, 100'000'000);
    cs.seed = seed;
    run_case_study(cs, port);
  } else {
    usage();
  }

  std::vector<wire::TelemetryRecord> records = port.records();
  const double port_override = arg_double(argc, argv, "--port", -1.0);
  if (port_override >= 0.0) {
    for (auto& r : records) {
      r.egress_port = static_cast<std::uint32_t>(port_override);
    }
  }
  if (arg_flag(argc, argv, "--stream")) {
    wire::write_stream_file(out_path, records);
  } else {
    wire::write_trace_file(out_path, records);
  }
  std::printf("%s: %zu records (%llu dropped), peak depth %u cells, "
              "span %.2f ms\n",
              out_path.c_str(), port.records().size(),
              static_cast<unsigned long long>(port.stats().dropped),
              port.stats().peak_depth_cells,
              static_cast<double>(port.stats().last_departure) / 1e6);
  return 0;
}
