// pq_ctl — command-line client for a running pq_serve daemon.
//
// Usage:
//   pq_ctl <query-sock> windows <port> <t1_ns> <t2_ns> [--top K]
//   pq_ctl <query-sock> monitor <port> <t_ns>
//   pq_ctl <query-sock> ping
//   pq_ctl <metrics-sock> metrics
//
// Queries ride control::QueryClient — idempotent request IDs, retries with
// capped backoff, CRC-verified responses — over a unix-socket transport
// that reconnects per attempt (a daemon mid-restart just costs a retry).
// The windows/monitor output bodies are byte-identical to pq_query over
// the same data; only the first header line differs, so tests compare
// with `sed 1d` exactly like the golden archive test.
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "control/query_client.h"
#include "serve/socket_server.h"

namespace {

/// One transport attempt = one connection: send the frame, read one back.
pq::control::QueryClient::Transport socket_transport(std::string path) {
  return [path](std::span<const std::uint8_t> request)
             -> std::vector<std::vector<std::uint8_t>> {
    const int fd = pq::serve::connect_unix(path);
    if (fd < 0) return {};
    std::vector<std::vector<std::uint8_t>> responses;
    std::vector<std::uint8_t> resp;
    if (pq::serve::send_frame(fd, request) &&
        pq::serve::recv_frame(fd, resp)) {
      responses.push_back(std::move(resp));
    }
    ::close(fd);
    return responses;
  };
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pq;
  if (argc < 3) {
    std::fprintf(stderr,
                 "usage: pq_ctl <query-sock> windows <port> <t1> <t2> "
                 "[--top K]\n"
                 "       pq_ctl <query-sock> monitor <port> <t>\n"
                 "       pq_ctl <query-sock> ping\n"
                 "       pq_ctl <metrics-sock> metrics\n");
    return 2;
  }
  const std::string sock = argv[1];
  const std::string mode = argv[2];

  if (mode == "metrics") {
    const std::string body = serve::fetch_text(sock, "");
    if (body.empty()) {
      std::fprintf(stderr, "cannot fetch metrics from %s\n", sock.c_str());
      return 1;
    }
    std::fwrite(body.data(), 1, body.size(), stdout);
    return 0;
  }

  control::QueryClient client(socket_transport(sock));

  if (mode == "ping") {
    // A deliberately malformed (empty) request: any live daemon answers it
    // with a decodable kMalformed reject — proof the query path is up
    // without touching any shard.
    const int fd = serve::connect_unix(sock);
    if (fd < 0) {
      std::fprintf(stderr, "no daemon at %s\n", sock.c_str());
      return 1;
    }
    std::vector<std::uint8_t> resp;
    const bool ok = serve::send_frame(fd, {}) && serve::recv_frame(fd, resp);
    ::close(fd);
    if (!ok || control::decode_response(resp).status !=
                   control::QueryStatus::kMalformed) {
      std::fprintf(stderr, "unexpected ping response from %s\n",
                   sock.c_str());
      return 1;
    }
    std::printf("pong: %s\n", sock.c_str());
    return 0;
  }

  if (argc < (mode == "monitor" ? 5 : 6)) {
    std::fprintf(stderr, "%s mode needs <port> and timestamp(s)\n",
                 mode.c_str());
    return 2;
  }
  control::QueryRequest req;
  req.port_prefix = static_cast<std::uint32_t>(std::atoi(argv[3]));
  req.t1 = static_cast<Timestamp>(std::atoll(argv[4]));
  if (mode == "windows") {
    req.type = control::QueryType::kTimeWindows;
    req.t2 = static_cast<Timestamp>(std::atoll(argv[5]));
  } else if (mode == "monitor") {
    req.type = control::QueryType::kQueueMonitor;
    req.t2 = req.t1;
  } else {
    std::fprintf(stderr, "unknown mode '%s'\n", mode.c_str());
    return 2;
  }
  std::size_t top = 10;
  for (int i = 4; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--top") == 0) {
      top = static_cast<std::size_t>(std::atoi(argv[i + 1]));
    }
  }

  const auto result = client.query(req);
  if (!result.delivered) {
    std::fprintf(stderr, "no verified response from %s after %u attempt(s)\n",
                 sock.c_str(), result.attempts);
    return 1;
  }
  const control::QueryResponse& resp = result.response;
  if (resp.status == control::QueryStatus::kMalformed ||
      resp.status == control::QueryStatus::kUnknownType) {
    std::fprintf(stderr, "daemon rejected the query (status %u)\n",
                 static_cast<unsigned>(resp.status));
    return 1;
  }

  std::printf("daemon %s: status=%s confidence=%.3f attempts=%u\n",
              sock.c_str(),
              resp.status == control::QueryStatus::kOk ? "ok" : "partial",
              resp.confidence, result.attempts);
  if (mode == "windows") {
    std::printf("\nper-flow packet counts over [%llu, %llu) ns "
                "(%zu flows):\n",
                static_cast<unsigned long long>(req.t1),
                static_cast<unsigned long long>(req.t2),
                resp.counts.size());
    for (const auto& [flow, n] : core::top_k_flows(resp.counts, top)) {
      std::printf("  %-44s %10.1f\n", to_string(flow).c_str(), n);
    }
  } else {
    std::printf("\noriginal culprits near t=%llu ns (%zu entries):\n",
                static_cast<unsigned long long>(req.t1),
                resp.culprits.size());
    const auto counts = core::culprit_counts(resp.culprits);
    for (const auto& [flow, n] : core::top_k_flows(counts, 10)) {
      std::printf("  %-44s %10.0f packets\n", to_string(flow).c_str(), n);
    }
  }
  return 0;
}
