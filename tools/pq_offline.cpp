// pq_offline — query a saved register-records bundle (produced by
// `pq_replay --save-records`) with no live pipeline: the decoupled
// collect/analyze workflow of the paper's Fig. 3.
//
// Usage:
//   pq_offline <records.pqr> windows <port> <t1_ns> <t2_ns> [--top K]
//   pq_offline <records.pqr> monitor <port> <t_ns>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "control/register_records.h"

int main(int argc, char** argv) {
  using namespace pq;
  if (argc < 5) {
    std::fprintf(stderr,
                 "usage: pq_offline <records.pqr> windows <port> <t1> <t2> "
                 "[--top K]\n"
                 "       pq_offline <records.pqr> monitor <port> <t>\n");
    return 2;
  }

  control::RegisterRecords records;
  try {
    records = control::read_records_file(argv[1]);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "cannot read %s: %s\n", argv[1], e.what());
    return 1;
  }
  std::printf("records: m0=%u alpha=%u k=%u T=%u, %zu port(s), "
              "%zu checkpoint(s), z0=%.3f\n",
              records.window_params.m0, records.window_params.alpha,
              records.window_params.k, records.window_params.num_windows,
              records.window_snapshots.size(),
              records.window_snapshots.empty()
                  ? std::size_t{0}
                  : records.window_snapshots[0].size(),
              records.z0);

  const std::string mode = argv[2];
  const auto port = static_cast<std::uint32_t>(std::atoi(argv[3]));
  if (mode == "windows") {
    if (argc < 6) {
      std::fprintf(stderr, "windows mode needs <t1> <t2>\n");
      return 2;
    }
    const auto t1 = static_cast<Timestamp>(std::atoll(argv[4]));
    const auto t2 = static_cast<Timestamp>(std::atoll(argv[5]));
    std::size_t top = 10;
    for (int i = 6; i + 1 < argc; ++i) {
      if (std::strcmp(argv[i], "--top") == 0) {
        top = static_cast<std::size_t>(std::atoi(argv[i + 1]));
      }
    }
    const auto counts =
        control::offline_query_time_windows(records, port, t1, t2);
    std::printf("\nper-flow packet counts over [%llu, %llu) ns "
                "(%zu flows):\n",
                static_cast<unsigned long long>(t1),
                static_cast<unsigned long long>(t2), counts.size());
    for (const auto& [flow, n] : core::top_k_flows(counts, top)) {
      std::printf("  %-44s %10.1f\n", to_string(flow).c_str(), n);
    }
  } else if (mode == "monitor") {
    const auto t = static_cast<Timestamp>(std::atoll(argv[4]));
    const auto culprits =
        control::offline_query_queue_monitor(records, port, t);
    std::printf("\noriginal culprits near t=%llu ns (%zu entries):\n",
                static_cast<unsigned long long>(t), culprits.size());
    const auto counts = core::culprit_counts(culprits);
    for (const auto& [flow, n] : core::top_k_flows(counts, 10)) {
      std::printf("  %-44s %10.0f packets\n", to_string(flow).c_str(), n);
    }
  } else {
    std::fprintf(stderr, "unknown mode '%s'\n", mode.c_str());
    return 2;
  }
  return 0;
}
