// pq_net — network-wide PrintQueue driver (docs/NETWORK.md).
//
// Replays a multi-switch scenario through the NetworkEngine (per-switch
// sharded PrintQueue stacks composed hop by hop in GVT epochs), then runs
// hop attribution for the scenario's victim flow and prints the JSON
// report: per-hop victim delays, the attributed hop, the culprit flows the
// time-window query names there, and precision/recall against
// record-derived ground truth.
//
// Usage:
//   pq_net <incast|ecmp> [--topology leafspine|fattree|FILE.json]
//          [--leaves L] [--spines S] [--hosts H] [--k K]
//          [--senders N] [--gbps G] [--ms N] [--seed S]
//          [--threads T] [--batch B] [--top-k K] [--out report.json]
//
//   pq_net topo-dump [--topology ...]   # print the resolved topology JSON
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include "net/network_analysis.h"
#include "net/network_engine.h"
#include "net/topology.h"
#include "traffic/net_scenarios.h"

namespace {

[[noreturn]] void usage() {
  std::fprintf(
      stderr,
      "usage: pq_net <incast|ecmp|topo-dump>\n"
      "              [--topology leafspine|fattree|FILE.json]\n"
      "              [--leaves L] [--spines S] [--hosts H] [--k K]\n"
      "              [--senders N] [--gbps G] [--ms N] [--seed S]\n"
      "              [--threads T] [--batch B] [--top-k K] [--out FILE]\n");
  std::exit(2);
}

double arg_double(int argc, char** argv, const char* name, double dflt) {
  for (int i = 2; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return std::atof(argv[i + 1]);
  }
  return dflt;
}

const char* arg_str(int argc, char** argv, const char* name,
                    const char* dflt) {
  for (int i = 2; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return argv[i + 1];
  }
  return dflt;
}

pq::net::Topology resolve_topology(int argc, char** argv,
                                   const std::string& mode) {
  using namespace pq;
  const std::string spec = arg_str(argc, argv, "--topology", "leafspine");
  if (spec == "leafspine") {
    // ecmp needs spine fan-out and a rack wide enough that the loaded
    // uplink (not the receiver downlinks) stays the bottleneck.
    const bool ecmp = mode == "ecmp";
    net::LeafSpineParams p;
    p.leaves =
        static_cast<std::uint32_t>(arg_double(argc, argv, "--leaves", 2.0));
    p.spines = static_cast<std::uint32_t>(
        arg_double(argc, argv, "--spines", ecmp ? 2.0 : 1.0));
    p.hosts_per_leaf = static_cast<std::uint32_t>(
        arg_double(argc, argv, "--hosts", ecmp ? 8.0 : 4.0));
    return net::make_leaf_spine(p);
  }
  if (spec == "fattree") {
    net::FatTreeParams p;
    p.k = static_cast<std::uint32_t>(arg_double(argc, argv, "--k", 4.0));
    return net::make_fat_tree(p);
  }
  return net::load_topology_file(spec);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pq;
  if (argc < 2) usage();
  const std::string mode = argv[1];

  net::Topology topo;
  try {
    topo = resolve_topology(argc, argv, mode);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "pq_net: %s\n", e.what());
    return 1;
  }

  if (mode == "topo-dump") {
    std::fputs(net::to_json(topo).c_str(), stdout);
    return 0;
  }

  const auto seed =
      static_cast<std::uint64_t>(arg_double(argc, argv, "--seed", 1.0));
  const auto duration =
      static_cast<Duration>(arg_double(argc, argv, "--ms", 4.0) * 1e6);

  traffic::NetScenario sc;
  try {
    if (mode == "incast") {
      traffic::CrossRackIncastConfig cfg;
      cfg.receiver_host = 0;
      cfg.senders =
          static_cast<std::uint32_t>(arg_double(argc, argv, "--senders", 6.0));
      cfg.sender_gbps = arg_double(argc, argv, "--gbps", 2.0);
      cfg.duration_ns = duration;
      cfg.seed = seed;
      sc = traffic::cross_rack_incast(topo, cfg);
    } else if (mode == "ecmp") {
      traffic::EcmpImbalanceConfig cfg;
      cfg.src_host = 0;
      cfg.dst_host = static_cast<std::uint32_t>(topo.hosts.size() - 1);
      cfg.flows =
          static_cast<std::uint32_t>(arg_double(argc, argv, "--senders", 10.0));
      cfg.flow_gbps = arg_double(argc, argv, "--gbps", 4.5);
      cfg.duration_ns = duration;
      cfg.seed = seed;
      sc = traffic::ecmp_imbalance(topo, cfg);
    } else {
      usage();
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "pq_net: %s\n", e.what());
    return 1;
  }

  net::NetworkConfig ncfg;
  ncfg.topology = topo;
  ncfg.node.pipeline.windows.m0 = 10;
  ncfg.node.pipeline.windows.alpha = 1;
  ncfg.node.pipeline.windows.k = 9;
  ncfg.node.pipeline.windows.num_windows = 4;
  ncfg.node.pipeline.monitor.max_depth_cells = 25000;
  ncfg.node.pipeline.monitor.granularity_cells = 8;

  net::NetworkEngine net(ncfg);
  net.run(std::move(sc.injections),
          static_cast<unsigned>(arg_double(argc, argv, "--threads", 1.0)),
          static_cast<std::uint32_t>(arg_double(argc, argv, "--batch", 1.0)));

  net::NetworkAnalysis analysis(net);
  const auto top_k =
      static_cast<std::size_t>(arg_double(argc, argv, "--top-k", 5.0));
  net::AttributionReport report;
  try {
    report = analysis.attribute(sc.victim, top_k);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "pq_net: attribution failed: %s\n", e.what());
    return 1;
  }

  const std::string json = net::to_json(report, net.stats());
  const char* out = arg_str(argc, argv, "--out", nullptr);
  if (out != nullptr) {
    std::ofstream f(out);
    f << json;
  }
  std::fputs(json.c_str(), stdout);

  const bool hop_correct =
      report.culprit_switch == sc.expected_culprit_switch &&
      report.culprit_port == sc.expected_culprit_port;
  std::fprintf(stderr,
               "attributed hop: switch %u port %u (%s), precision %.3f, "
               "recall %.3f\n",
               report.culprit_switch, report.culprit_port,
               hop_correct ? "matches ground truth" : "MISMATCH",
               report.direct_accuracy.precision, report.direct_accuracy.recall);
  return hop_correct ? 0 : 3;
}
