// pq_query — retroactive culprit queries against a pq::store archive
// directory (produced by `pq_replay --archive-dir`), including one that a
// crash left without clean-close footers: the reader recovers the longest
// CRC-valid prefix of every port's stream and answers from that.
//
// Usage:
//   pq_query <archive-dir> windows <port> <t1_ns> <t2_ns> [--top K]
//   pq_query <archive-dir> monitor <port> <t_ns>
//   pq_query <archive-dir> info
//
// The windows/monitor output bodies are byte-identical to pq_offline over
// the same span (both run control::offline_query_*); only the first header
// line differs. tests/golden_archive_test.sh relies on that.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "store/archive_reader.h"

int main(int argc, char** argv) {
  using namespace pq;
  if (argc < 3) {
    std::fprintf(stderr,
                 "usage: pq_query <archive-dir> windows <port> <t1> <t2> "
                 "[--top K]\n"
                 "       pq_query <archive-dir> monitor <port> <t>\n"
                 "       pq_query <archive-dir> info\n");
    return 2;
  }

  std::unique_ptr<store::ArchiveReader> reader;
  try {
    reader = std::make_unique<store::ArchiveReader>(argv[1]);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "cannot read %s: %s\n", argv[1], e.what());
    return 1;
  }
  const auto& stats = reader->stats();
  std::printf("archive: %zu port(s), %llu block(s) in %llu segment(s), "
              "%llu recover%s\n",
              reader->ports().size(),
              static_cast<unsigned long long>(stats.blocks_recovered),
              static_cast<unsigned long long>(stats.segments_opened),
              static_cast<unsigned long long>(stats.recoveries),
              stats.recoveries == 1 ? "y" : "ies");

  const std::string mode = argv[2];
  if (mode == "info") {
    std::printf("  footer hits: %llu of %llu segment(s)\n",
                static_cast<unsigned long long>(stats.footer_hits),
                static_cast<unsigned long long>(stats.segments_opened));
    std::printf("  bytes truncated by recovery: %llu\n",
                static_cast<unsigned long long>(stats.bytes_truncated));
    for (const auto port : reader->ports()) {
      const auto& rec = reader->recovered().at(port);
      const auto records = reader->to_records(port);
      std::printf("  port %u: %zu block(s), m0=%u alpha=%u k=%u T=%u, "
                  "%zu checkpoint(s), %zu capture(s), z0=%.3f\n",
                  port, rec.blocks.size(), records.window_params.m0,
                  records.window_params.alpha, records.window_params.k,
                  records.window_params.num_windows,
                  records.window_snapshots.empty()
                      ? std::size_t{0}
                      : records.window_snapshots[0].size(),
                  reader->dq_captures(port).size(), records.z0);
    }
    return 0;
  }

  if (argc < 5) {
    std::fprintf(stderr, "%s mode needs <port> and timestamp(s)\n",
                 mode.c_str());
    return 2;
  }
  const auto port = static_cast<std::uint32_t>(std::atoi(argv[3]));
  if (!reader->has_port(port)) {
    std::fprintf(stderr, "port %u not present in archive\n", port);
    return 1;
  }

  if (mode == "windows") {
    if (argc < 6) {
      std::fprintf(stderr, "windows mode needs <t1> <t2>\n");
      return 2;
    }
    const auto t1 = static_cast<Timestamp>(std::atoll(argv[4]));
    const auto t2 = static_cast<Timestamp>(std::atoll(argv[5]));
    std::size_t top = 10;
    for (int i = 6; i + 1 < argc; ++i) {
      if (std::strcmp(argv[i], "--top") == 0) {
        top = static_cast<std::size_t>(std::atoi(argv[i + 1]));
      }
    }
    const auto counts = reader->query_time_windows(port, t1, t2);
    std::printf("\nper-flow packet counts over [%llu, %llu) ns "
                "(%zu flows):\n",
                static_cast<unsigned long long>(t1),
                static_cast<unsigned long long>(t2), counts.size());
    for (const auto& [flow, n] : core::top_k_flows(counts, top)) {
      std::printf("  %-44s %10.1f\n", to_string(flow).c_str(), n);
    }
  } else if (mode == "monitor") {
    const auto t = static_cast<Timestamp>(std::atoll(argv[4]));
    const auto culprits = reader->query_queue_monitor(port, t);
    std::printf("\noriginal culprits near t=%llu ns (%zu entries):\n",
                static_cast<unsigned long long>(t), culprits.size());
    const auto counts = core::culprit_counts(culprits);
    for (const auto& [flow, n] : core::top_k_flows(counts, 10)) {
      std::printf("  %-44s %10.0f packets\n", to_string(flow).c_str(), n);
    }
  } else {
    std::fprintf(stderr, "unknown mode '%s'\n", mode.c_str());
    return 2;
  }
  return 0;
}
