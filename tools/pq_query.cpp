// pq_query — retroactive culprit queries against a pq::store archive
// directory (produced by `pq_replay --archive-dir`), including one that a
// crash left without clean-close footers: the reader recovers the longest
// CRC-valid prefix of every port's stream and answers from that.
//
// Usage:
//   pq_query <archive-dir> windows <port> <t1_ns> <t2_ns> [--top K]
//   pq_query <archive-dir> monitor <port> <t_ns>
//   pq_query <archive-dir> blocks <port>
//   pq_query <archive-dir> info
//   (any mode) [--strict] [--as-of T_ns] [--threads N] [--full-scan]
//
// `--threads N` recovers port chains on N workers; the recovered state is
// byte-identical to the sequential scan (whole-port jobs, merged in port
// order). `--full-scan` disables the sparse time index for `--as-of`
// queries, forcing the per-block linear cut — the differential-test oracle
// for the indexed seek path.
//
// `--as-of T` answers from only the blocks with t_hi <= T — the archive as
// it stood at time T. Calibration is newest-wins, so a later checkpoint
// legitimately rescales answers over earlier spans; bounding two archives
// to a common horizon is how the kill-and-recover test compares a crash
// survivor against its uninterrupted oracle.
//
// The windows/monitor output bodies are byte-identical to pq_offline over
// the same span (both run control::offline_query_*); only the first header
// line differs. tests/golden_archive_test.sh relies on that.
//
// `blocks` prints one canonical line per recovered block (kind, partition,
// time span, payload length and CRC) — a block-level fingerprint of the
// surviving stream, so crash-recovery tests can assert that one archive is
// an exact prefix of another with head/diff.
//
// `--strict` turns recovery into a visible failure: whenever the scan had
// to truncate anything (a crash-torn tail, a corrupt block), a one-line
// summary goes to stderr and the exit code is 3. The answers themselves
// are unchanged — strict mode is for scripts that must distinguish "clean
// archive" from "recovered archive".
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <memory>
#include <string>

#include "common/hash.h"
#include "store/archive_reader.h"

int main(int argc, char** argv) {
  using namespace pq;
  if (argc < 3) {
    std::fprintf(stderr,
                 "usage: pq_query <archive-dir> windows <port> <t1> <t2> "
                 "[--top K] [--strict]\n"
                 "       pq_query <archive-dir> monitor <port> <t> "
                 "[--strict]\n"
                 "       pq_query <archive-dir> blocks <port> [--strict]\n"
                 "       pq_query <archive-dir> info [--strict]\n");
    return 2;
  }
  bool strict = false;
  auto as_of = std::numeric_limits<Timestamp>::max();
  store::ReaderOptions ropts;
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--strict") == 0) strict = true;
    if (std::strcmp(argv[i], "--full-scan") == 0) ropts.use_seek_index = false;
    if (std::strcmp(argv[i], "--as-of") == 0 && i + 1 < argc) {
      as_of = static_cast<Timestamp>(std::atoll(argv[i + 1]));
    }
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      ropts.threads = static_cast<unsigned>(std::atoi(argv[i + 1]));
    }
  }

  std::unique_ptr<store::ArchiveReader> reader;
  try {
    reader = std::make_unique<store::ArchiveReader>(argv[1], ropts);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "cannot read %s: %s\n", argv[1], e.what());
    return 1;
  }
  const auto& stats = reader->stats();
  std::printf("archive: %zu port(s), %llu block(s) in %llu segment(s), "
              "%llu recover%s\n",
              reader->ports().size(),
              static_cast<unsigned long long>(stats.blocks_recovered),
              static_cast<unsigned long long>(stats.segments_opened),
              static_cast<unsigned long long>(stats.recoveries),
              stats.recoveries == 1 ? "y" : "ies");

  // Shared epilogue: recovery is always announced on stderr (stdout bodies
  // stay byte-stable for the golden tests); strict mode makes it fatal.
  const bool dirty = stats.recoveries > 0 || stats.bytes_truncated > 0;
  auto finish = [&]() -> int {
    if (dirty) {
      std::fprintf(stderr,
                   "recovery: %llu recover%s, %llu byte(s) truncated, "
                   "%llu of %llu segment(s) footer-clean\n",
                   static_cast<unsigned long long>(stats.recoveries),
                   stats.recoveries == 1 ? "y" : "ies",
                   static_cast<unsigned long long>(stats.bytes_truncated),
                   static_cast<unsigned long long>(stats.footer_hits),
                   static_cast<unsigned long long>(stats.segments_opened));
    }
    return strict && dirty ? 3 : 0;
  };

  const std::string mode = argv[2];
  if (mode == "info") {
    std::printf("  footer hits: %llu of %llu segment(s)\n",
                static_cast<unsigned long long>(stats.footer_hits),
                static_cast<unsigned long long>(stats.segments_opened));
    std::printf("  bytes truncated by recovery: %llu\n",
                static_cast<unsigned long long>(stats.bytes_truncated));
    if (stats.decode_errors > 0) {
      std::printf("  blocks refused by logical decode: %llu\n",
                  static_cast<unsigned long long>(stats.decode_errors));
    }
    for (const auto port : reader->ports()) {
      const auto& rec = reader->recovered().at(port);
      const auto records = reader->to_records(port);
      std::printf("  port %u: %zu block(s), m0=%u alpha=%u k=%u T=%u, "
                  "%zu checkpoint(s), %zu capture(s), z0=%.3f\n",
                  port, rec.blocks.size(), records.window_params.m0,
                  records.window_params.alpha, records.window_params.k,
                  records.window_params.num_windows,
                  records.window_snapshots.empty()
                      ? std::size_t{0}
                      : records.window_snapshots[0].size(),
                  reader->dq_captures(port).size(), records.z0);
      for (const auto& seg : rec.segments) {
        std::printf("    seg %06u v%u: %llu block(s), %llu byte(s), "
                    "span [%llu, %llu], %llu index sample(s), %s\n",
                    seg.index, seg.version,
                    static_cast<unsigned long long>(seg.blocks),
                    static_cast<unsigned long long>(seg.bytes),
                    static_cast<unsigned long long>(seg.t_lo_min),
                    static_cast<unsigned long long>(seg.t_hi_max),
                    static_cast<unsigned long long>(seg.index_samples),
                    seg.footer_ok ? "footer ok" : "torn");
      }
      if (rec.decode_error.status != store::BlockDecodeStatus::kOk) {
        std::printf("    decode error: %s at seg %06u block %llu\n",
                    to_string(rec.decode_error.status),
                    rec.decode_error.segment_index,
                    static_cast<unsigned long long>(
                        rec.decode_error.block_ordinal));
      }
    }
    return finish();
  }

  if (argc < (mode == "blocks" ? 4 : 5)) {
    std::fprintf(stderr, "%s mode needs <port>%s\n", mode.c_str(),
                 mode == "blocks" ? "" : " and timestamp(s)");
    return 2;
  }
  const auto port = static_cast<std::uint32_t>(std::atoi(argv[3]));
  if (!reader->has_port(port)) {
    std::fprintf(stderr, "port %u not present in archive\n", port);
    return 1;
  }

  if (mode == "blocks") {
    // One line per recovered block, in append order. The payload CRC makes
    // each line a content fingerprint: `head -n K | diff` proves one
    // archive's surviving stream is a prefix of another's.
    const auto& rec = reader->recovered().at(port);
    for (const auto& b : rec.blocks) {
      std::printf("block kind=%u part=%u t_lo=%llu t_hi=%llu len=%zu "
                  "crc=%08x\n",
                  static_cast<unsigned>(b.kind), b.partition,
                  static_cast<unsigned long long>(b.t_lo),
                  static_cast<unsigned long long>(b.t_hi), b.payload.size(),
                  crc32(b.payload.data(), b.payload.size()));
    }
    return finish();
  }

  if (mode == "windows") {
    if (argc < 6) {
      std::fprintf(stderr, "windows mode needs <t1> <t2>\n");
      return 2;
    }
    const auto t1 = static_cast<Timestamp>(std::atoll(argv[4]));
    const auto t2 = static_cast<Timestamp>(std::atoll(argv[5]));
    std::size_t top = 10;
    for (int i = 6; i + 1 < argc; ++i) {
      if (std::strcmp(argv[i], "--top") == 0) {
        top = static_cast<std::size_t>(std::atoi(argv[i + 1]));
      }
    }
    const auto counts = reader->query_time_windows(port, t1, t2, 0, as_of);
    std::printf("\nper-flow packet counts over [%llu, %llu) ns "
                "(%zu flows):\n",
                static_cast<unsigned long long>(t1),
                static_cast<unsigned long long>(t2), counts.size());
    for (const auto& [flow, n] : core::top_k_flows(counts, top)) {
      std::printf("  %-44s %10.1f\n", to_string(flow).c_str(), n);
    }
  } else if (mode == "monitor") {
    const auto t = static_cast<Timestamp>(std::atoll(argv[4]));
    const auto culprits = reader->query_queue_monitor(port, t, 0, as_of);
    std::printf("\noriginal culprits near t=%llu ns (%zu entries):\n",
                static_cast<unsigned long long>(t), culprits.size());
    const auto counts = core::culprit_counts(culprits);
    for (const auto& [flow, n] : core::top_k_flows(counts, 10)) {
      std::printf("  %-44s %10.0f packets\n", to_string(flow).c_str(), n);
    }
  } else {
    std::fprintf(stderr, "unknown mode '%s'\n", mode.c_str());
    return 2;
  }
  return finish();
}
