// pq_serve — the always-on PrintQueue ingest daemon (docs/SERVICE.md).
//
// Tails a stream-framed telemetry file (pq_gentrace --stream, or anything
// appending wire::append_record_frame frames), feeds the port-sharded
// engine online, archives every shard's telemetry to a crash-safe
// pq::store directory with segment retention, answers live culprit
// queries over the QueryService protocol on a unix socket, and exposes
// Prometheus metrics on another.
//
// Usage:
//   pq_serve --ports P1[,P2...] [--feed trace.pqsm] [--exit-at-eof]
//            [--batch N] [--queue-cap N] [--overload backpressure|shed]
//            [--pin-threads]
//            [--archive-dir DIR] [--retain-segments N]
//            [--archive-segment-bytes N] [--archive-fsync none|segment|block]
//            [--archive-format 1|2] [--recovery-threads N]
//            [--compact-every-ms N] [--compact-keep-newest N]
//            [--query-sock PATH] [--metrics-sock PATH]
//            [--metrics-out FILE] [--metrics-every-ms N]
//            [--watchdog-ms N] [--flush-every-ms N] [--poll-sleep-us N]
//            [--faults plan.json]
//            [--alpha A] [--k K] [--T N] [--m0 M] [--max-depth CELLS]
//            [--salvage] [--simd auto|avx2|scalar] [--print-simd]
//
// Lifecycle: SIGTERM/SIGINT triggers a graceful drain (queued records
// absorbed, archive footers written, final metrics dumped, exit 0); a
// second signal aborts immediately. After a SIGKILL, the next start with
// the same --archive-dir recovers the longest valid prefix and keeps
// serving queries over it.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/simd/dispatch.h"
#include "serve/daemon.h"
#include "serve/fault_config.h"

namespace {

std::atomic<bool> g_stop{false};

void on_signal(int) {
  if (g_stop.exchange(true)) std::_Exit(130);  // second signal: hard abort
}

double arg_double(int argc, char** argv, const char* name, double dflt) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return std::atof(argv[i + 1]);
  }
  return dflt;
}

bool arg_flag(int argc, char** argv, const char* name) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return true;
  }
  return false;
}

const char* arg_str(int argc, char** argv, const char* name,
                    const char* dflt) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return argv[i + 1];
  }
  return dflt;
}

std::vector<std::uint32_t> parse_ports(const char* list) {
  std::vector<std::uint32_t> ports;
  if (list == nullptr) return ports;
  const std::string s = list;
  std::size_t pos = 0;
  while (pos < s.size()) {
    const std::size_t comma = s.find(',', pos);
    const std::string tok =
        s.substr(pos, comma == std::string::npos ? comma : comma - pos);
    if (!tok.empty()) {
      ports.push_back(static_cast<std::uint32_t>(std::atoi(tok.c_str())));
    }
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return ports;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pq;

  // SIMD dispatch resolves before the daemon spins up any shard thread;
  // --print-simd is a bare probe and exits without needing --ports.
  if (arg_flag(argc, argv, "--print-simd")) {
    std::printf("compiled: scalar%s\n",
                simd::compiled(simd::Level::kAvx2) ? " avx2" : "");
    std::printf("cpu: %s\n",
                simd::cpu_supports(simd::Level::kAvx2) ? "avx2" : "scalar");
    std::printf("landed: %s\n", simd::to_string(simd::configure()));
    return 0;
  }
  if (const char* req = arg_str(argc, argv, "--simd", nullptr)) {
    const auto parsed = simd::parse_request(req);
    if (!parsed) {
      std::fprintf(stderr, "unknown --simd '%s' (auto|avx2|scalar)\n", req);
      return 2;
    }
    simd::configure(*parsed);
  }

  serve::DaemonConfig dc;
  dc.ports = parse_ports(arg_str(argc, argv, "--ports", nullptr));
  if (dc.ports.empty()) {
    std::fprintf(stderr,
                 "usage: pq_serve --ports P1[,P2...] [--feed FILE] "
                 "[--exit-at-eof] [--archive-dir DIR] [--query-sock PATH] "
                 "[--metrics-sock PATH] ... (see header comment)\n");
    return 2;
  }

  dc.pipeline.windows.m0 =
      static_cast<std::uint32_t>(arg_double(argc, argv, "--m0", 6));
  dc.pipeline.windows.alpha =
      static_cast<std::uint32_t>(arg_double(argc, argv, "--alpha", 2));
  dc.pipeline.windows.k =
      static_cast<std::uint32_t>(arg_double(argc, argv, "--k", 12));
  dc.pipeline.windows.num_windows =
      static_cast<std::uint32_t>(arg_double(argc, argv, "--T", 4));
  dc.pipeline.monitor.max_depth_cells = static_cast<std::uint32_t>(
      arg_double(argc, argv, "--max-depth", 25000.0));
  dc.analysis.salvage_stale_cells = arg_flag(argc, argv, "--salvage");

  dc.feed_path = arg_str(argc, argv, "--feed", "");
  dc.follow = !arg_flag(argc, argv, "--exit-at-eof");
  dc.supervisor.batch = static_cast<std::size_t>(
      arg_double(argc, argv, "--batch", 256));
  dc.supervisor.queue_capacity = static_cast<std::size_t>(
      arg_double(argc, argv, "--queue-cap", 8192));
  dc.supervisor.pin_threads = arg_flag(argc, argv, "--pin-threads");
  const char* overload = arg_str(argc, argv, "--overload", "backpressure");
  if (std::strcmp(overload, "shed") == 0) {
    dc.supervisor.overload = serve::OverloadPolicy::kShedNewest;
  } else if (std::strcmp(overload, "backpressure") != 0) {
    std::fprintf(stderr, "unknown --overload '%s'\n", overload);
    return 2;
  }

  dc.archive_dir = arg_str(argc, argv, "--archive-dir", "");
  dc.retain_segments = static_cast<std::uint32_t>(
      arg_double(argc, argv, "--retain-segments", 0));
  dc.archive_segment_bytes = static_cast<std::uint64_t>(
      arg_double(argc, argv, "--archive-segment-bytes", 0));
  const char* fsync = arg_str(argc, argv, "--archive-fsync", "none");
  if (std::strcmp(fsync, "block") == 0) {
    dc.archive_fsync = store::FsyncPolicy::kPerBlock;
  } else if (std::strcmp(fsync, "segment") == 0) {
    dc.archive_fsync = store::FsyncPolicy::kPerSegment;
  } else if (std::strcmp(fsync, "none") != 0) {
    std::fprintf(stderr, "unknown --archive-fsync '%s'\n", fsync);
    return 2;
  }
  dc.archive_format = static_cast<std::uint16_t>(arg_double(
      argc, argv, "--archive-format", store::kFormatVersionV2));
  if (dc.archive_format != store::kFormatVersionV1 &&
      dc.archive_format != store::kFormatVersionV2) {
    std::fprintf(stderr, "--archive-format must be 1 or 2\n");
    return 2;
  }
  dc.recovery_threads = static_cast<unsigned>(
      arg_double(argc, argv, "--recovery-threads", 0));
  dc.compact_every_ms = static_cast<std::uint32_t>(
      arg_double(argc, argv, "--compact-every-ms", 0));
  dc.compact_keep_newest = static_cast<std::uint32_t>(
      arg_double(argc, argv, "--compact-keep-newest", 1));

  dc.query_socket = arg_str(argc, argv, "--query-sock", "");
  dc.metrics_socket = arg_str(argc, argv, "--metrics-sock", "");
  dc.metrics_out = arg_str(argc, argv, "--metrics-out", "");
  dc.metrics_every_ms = static_cast<std::uint32_t>(
      arg_double(argc, argv, "--metrics-every-ms", 1000));
  dc.watchdog_ms = static_cast<std::uint32_t>(
      arg_double(argc, argv, "--watchdog-ms", 500));
  dc.flush_every_ms = static_cast<std::uint32_t>(
      arg_double(argc, argv, "--flush-every-ms", 100));
  dc.poll_sleep_us = static_cast<std::uint32_t>(
      arg_double(argc, argv, "--poll-sleep-us", 1000));

  if (const char* plan = arg_str(argc, argv, "--faults", nullptr)) {
    faults::FaultPlanConfig fcfg;
    std::string error;
    if (!serve::load_fault_config(plan, fcfg, error)) {
      std::fprintf(stderr, "%s\n", error.c_str());
      return 2;
    }
    dc.faults = fcfg;
  }

  std::unique_ptr<serve::Daemon> daemon;
  try {
    daemon = std::make_unique<serve::Daemon>(std::move(dc));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "pq_serve: %s\n", e.what());
    return 1;
  }

  const serve::RecoverySummary& rec = daemon->recovery();
  if (rec.scanned) {
    std::printf("recovered: %zu port(s), %llu block(s), %llu byte(s) "
                "truncated, %llu recover%s\n",
                rec.ports.size(),
                static_cast<unsigned long long>(rec.stats.blocks_recovered),
                static_cast<unsigned long long>(rec.stats.bytes_truncated),
                static_cast<unsigned long long>(rec.stats.recoveries),
                rec.stats.recoveries == 1 ? "y" : "ies");
  }
  std::printf("pq_serve: %zu shard(s) up, simd %s (requested %s)\n",
              daemon->supervisor().num_shards(),
              simd::to_string(simd::active_level()),
              simd::to_string(simd::active_request()));
  std::fflush(stdout);

  struct sigaction sa{};
  sa.sa_handler = on_signal;
  sigaction(SIGTERM, &sa, nullptr);
  sigaction(SIGINT, &sa, nullptr);
  std::signal(SIGPIPE, SIG_IGN);  // belt-and-braces beside MSG_NOSIGNAL

  const int rc = daemon->run(g_stop);

  const serve::ShardSupervisor& sup = daemon->supervisor();
  const serve::DecodeStats& d = daemon->decode_stats();
  std::printf("pq_serve: drained — %llu record(s) absorbed, %llu shed, "
              "%llu frame(s) ok, %llu rejected, %llu stall(s) seen\n",
              static_cast<unsigned long long>(sup.records_absorbed()),
              static_cast<unsigned long long>(sup.shed_total()),
              static_cast<unsigned long long>(d.frames_ok),
              static_cast<unsigned long long>(d.frames_rejected),
              static_cast<unsigned long long>(sup.watchdog_stalls_total()));
  return rc;
}
