#!/usr/bin/env python3
"""CI perf-regression gate for the perf_smoke bench.

Compares a freshly produced BENCH_perf_smoke.json against a committed
baseline and fails (exit 1) when any gated metric regresses beyond its
tolerance. Direction matters: throughput regresses when it goes DOWN,
latency and RSS regress when they go UP.

Baseline format (bench/baselines/perf_smoke_baseline.json):

    {
      "metrics": {
        "throughput_pps": {"value": 2.5e6, "better": "higher",
                            "tolerance_pct": 60},
        "query_p99_ns":   {"value": 250000, "better": "lower"},
        "peak_rss_kb":    {"value": 180000, "better": "lower",
                            "gate": true}
      }
    }

Per-metric "tolerance_pct" overrides the global tolerance (--tolerance or
$PQ_BENCH_TOLERANCE, default 15). "gate": false records a metric for the
report without failing on it. "requires": "<key>" gates the metric only
when the named key is present and non-zero in the current results — used
for gates that only make sense on capable hosts, e.g. simd_speedup_x
requires simd_avx2_available (a runner without AVX2 reports SKIPPED
instead of failing). "min_floor": <value> adds an ABSOLUTE lower bound on
top of the relative check — the metric fails when it drops below the
floor no matter what the baseline value or tolerance say. Floors are for
correctness-flavoured metrics (attribution precision, delivery counts)
where "within 15% of the recorded baseline" is not a meaningful promise
but "never below 0.8" is. Improvements never fail; they are reported so
the baseline can be refreshed (see docs/OBSERVABILITY.md).

Usage:
    check_bench_regression.py CURRENT.json BASELINE.json [--tolerance PCT]
    check_bench_regression.py --self-test
"""

import argparse
import json
import os
import sys

DEFAULT_TOLERANCE_PCT = 15.0


def compare(current, baseline, tolerance_pct):
    """Returns (failures, report_rows). `current` is the flat bench dict,
    `baseline` the parsed baseline file."""
    failures = []
    rows = []
    for name, spec in sorted(baseline.get("metrics", {}).items()):
        base_value = float(spec["value"])
        better = spec.get("better", "lower")
        if better not in ("higher", "lower"):
            raise ValueError(f"{name}: bad 'better' value {better!r}")
        gated = bool(spec.get("gate", True))
        tol = float(spec.get("tolerance_pct", tolerance_pct))

        requires = spec.get("requires")
        if requires is not None and not float(current.get(requires, 0)):
            rows.append((name, base_value, current.get(name),
                         f"SKIPPED ({requires} is 0)"))
            continue

        if name not in current:
            failures.append(f"{name}: missing from current results")
            rows.append((name, base_value, None, "MISSING"))
            continue
        cur_value = float(current[name])

        if base_value == 0:
            delta_pct = 0.0 if cur_value == 0 else float("inf")
        else:
            delta_pct = (cur_value - base_value) / base_value * 100.0
        # Positive `worse_pct` = moved in the regressing direction.
        worse_pct = -delta_pct if better == "higher" else delta_pct

        floor = spec.get("min_floor")
        if floor is not None and cur_value < float(floor):
            verdict = "FAIL (below floor)" if gated else "WARN (ungated)"
            if gated:
                failures.append(
                    f"{name}: {cur_value:.6g} below absolute floor "
                    f"{float(floor):.6g}"
                )
        elif worse_pct > tol:
            verdict = "FAIL" if gated else "WARN (ungated)"
            if gated:
                failures.append(
                    f"{name}: {cur_value:.6g} vs baseline {base_value:.6g} "
                    f"({worse_pct:+.1f}% worse, tolerance {tol:.0f}%)"
                )
        elif worse_pct < -tol:
            verdict = "IMPROVED (consider refreshing the baseline)"
        else:
            verdict = "ok"
        rows.append((name, base_value, cur_value, verdict))
    return failures, rows


def print_report(rows, tolerance_pct):
    print(f"perf regression check (default tolerance {tolerance_pct:.0f}%)")
    width = max((len(r[0]) for r in rows), default=10)
    for name, base, cur, verdict in rows:
        cur_s = "-" if cur is None else f"{cur:.6g}"
        print(f"  {name:<{width}}  baseline {base:>12.6g}  "
              f"current {cur_s:>12}  {verdict}")


def run_check(current_path, baseline_path, tolerance_pct):
    with open(current_path) as f:
        current = json.load(f)
    with open(baseline_path) as f:
        baseline = json.load(f)
    failures, rows = compare(current, baseline, tolerance_pct)
    print_report(rows, tolerance_pct)
    if failures:
        print("\nREGRESSIONS:", file=sys.stderr)
        for msg in failures:
            print(f"  {msg}", file=sys.stderr)
        return 1
    print("no perf regressions")
    return 0


# --- self-test -------------------------------------------------------------

def self_test():
    """Unit tests for the comparator, including the acceptance case: a
    synthetic 2x-slower current run must fail against the baseline."""
    baseline = {
        "metrics": {
            "throughput_pps": {"value": 1_000_000, "better": "higher"},
            "query_p99_ns": {"value": 100_000, "better": "lower"},
            "peak_rss_kb": {"value": 100_000, "better": "lower"},
            "run_ms": {"value": 500, "better": "lower", "gate": False},
        }
    }
    ok = {
        "throughput_pps": 980_000,  # -2%: within 15%
        "query_p99_ns": 104_000,    # +4%
        "peak_rss_kb": 99_000,
        "run_ms": 510,
    }
    twice_as_slow = {
        "throughput_pps": 500_000,  # -50%: regression
        "query_p99_ns": 200_000,    # +100%: regression
        "peak_rss_kb": 100_000,
        "run_ms": 1_000,
    }

    checks = []

    failures, _ = compare(ok, baseline, DEFAULT_TOLERANCE_PCT)
    checks.append(("clean run passes", failures == []))

    failures, _ = compare(twice_as_slow, baseline, DEFAULT_TOLERANCE_PCT)
    checks.append(("2x-slower run fails", len(failures) == 2))
    checks.append((
        "throughput drop is flagged",
        any("throughput_pps" in f for f in failures),
    ))
    checks.append((
        "latency doubling is flagged",
        any("query_p99_ns" in f for f in failures),
    ))

    # Improvements never fail, in either direction.
    better = {
        "throughput_pps": 2_000_000,
        "query_p99_ns": 50_000,
        "peak_rss_kb": 50_000,
        "run_ms": 250,
    }
    failures, rows = compare(better, baseline, DEFAULT_TOLERANCE_PCT)
    checks.append(("improvements pass", failures == []))
    checks.append((
        "improvements are reported for baseline refresh",
        any("IMPROVED" in r[3] for r in rows),
    ))

    # Ungated metrics warn instead of failing.
    slow_ungated = dict(ok, run_ms=5_000)
    failures, rows = compare(slow_ungated, baseline, DEFAULT_TOLERANCE_PCT)
    checks.append(("ungated regression does not fail", failures == []))
    checks.append((
        "ungated regression still warns",
        any("WARN" in r[3] for r in rows),
    ))

    # Missing metrics fail loudly.
    failures, _ = compare({}, baseline, DEFAULT_TOLERANCE_PCT)
    checks.append(("missing metrics fail", len(failures) == 4))

    # Per-metric tolerance overrides the global one.
    loose = {
        "metrics": {
            "run_ms": {"value": 100, "better": "lower",
                       "tolerance_pct": 300},
        }
    }
    failures, _ = compare({"run_ms": 350}, loose, DEFAULT_TOLERANCE_PCT)
    checks.append(("per-metric tolerance respected", failures == []))
    failures, _ = compare({"run_ms": 450}, loose, DEFAULT_TOLERANCE_PCT)
    checks.append(("per-metric tolerance still enforced",
                   len(failures) == 1))

    # `requires`: the gate only applies on hosts that report the capability.
    simd_base = {
        "metrics": {
            "simd_speedup_x": {"value": 2.0, "better": "higher",
                               "requires": "simd_avx2_available"},
        }
    }
    no_avx2 = {"simd_speedup_x": 1.0, "simd_avx2_available": 0}
    failures, rows = compare(no_avx2, simd_base, DEFAULT_TOLERANCE_PCT)
    checks.append(("requires-gated metric skipped without capability",
                   failures == [] and any("SKIPPED" in r[3] for r in rows)))
    with_avx2 = {"simd_speedup_x": 1.0, "simd_avx2_available": 1}
    failures, _ = compare(with_avx2, simd_base, DEFAULT_TOLERANCE_PCT)
    checks.append(("requires-gated metric enforced with capability",
                   len(failures) == 1))
    missing_cap = {"simd_speedup_x": 1.0}
    failures, rows = compare(missing_cap, simd_base, DEFAULT_TOLERANCE_PCT)
    checks.append(("missing capability key counts as absent",
                   failures == [] and any("SKIPPED" in r[3] for r in rows)))

    # Absolute floors: relative tolerance alone never trips, the floor does.
    floored = {
        "metrics": {
            "hop_attribution_precision": {
                "value": 0.95, "better": "higher",
                "tolerance_pct": 100, "min_floor": 0.8,
            },
        }
    }
    failures, _ = compare({"hop_attribution_precision": 0.85}, floored,
                          DEFAULT_TOLERANCE_PCT)
    checks.append(("above-floor value passes", failures == []))
    failures, rows = compare({"hop_attribution_precision": 0.5}, floored,
                             DEFAULT_TOLERANCE_PCT)
    checks.append((
        "below-floor value fails despite loose tolerance",
        len(failures) == 1 and "below absolute floor" in failures[0],
    ))
    checks.append((
        "floor failure is reported as such",
        any("below floor" in r[3] for r in rows),
    ))

    # Zero baselines: equal is fine, any growth is a regression.
    zeros = {"metrics": {"dropped": {"value": 0, "better": "lower"}}}
    failures, _ = compare({"dropped": 0}, zeros, DEFAULT_TOLERANCE_PCT)
    checks.append(("zero == zero passes", failures == []))
    failures, _ = compare({"dropped": 5}, zeros, DEFAULT_TOLERANCE_PCT)
    checks.append(("growth from zero fails", len(failures) == 1))

    failed = [name for name, passed in checks if not passed]
    for name, passed in checks:
        print(f"  [{'ok' if passed else 'FAIL'}] {name}")
    if failed:
        print(f"self-test: {len(failed)} check(s) failed", file=sys.stderr)
        return 1
    print(f"self-test: all {len(checks)} checks passed")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("current", nargs="?", help="fresh bench JSON")
    parser.add_argument("baseline", nargs="?", help="committed baseline JSON")
    parser.add_argument(
        "--tolerance", type=float,
        default=float(os.environ.get("PQ_BENCH_TOLERANCE",
                                     DEFAULT_TOLERANCE_PCT)),
        help="global regression tolerance in percent "
             "(default: $PQ_BENCH_TOLERANCE or 15)")
    parser.add_argument("--self-test", action="store_true",
                        help="run the comparator's unit tests and exit")
    args = parser.parse_args()

    if args.self_test:
        sys.exit(self_test())
    if not args.current or not args.baseline:
        parser.error("CURRENT and BASELINE are required unless --self-test")
    sys.exit(run_check(args.current, args.baseline, args.tolerance))


if __name__ == "__main__":
    main()
