// pq_replay — offline analysis of a collected trace: replay the egress
// stream through the PrintQueue data plane, then answer culprit queries.
//
// Usage:
//   pq_replay <trace.pqt> [--victim worst|<packet_id>] [--top K]
//             [--alpha A] [--k K] [--T N] [--m0 M] [--salvage]
//
// Prints the victim's direct, indirect, and original culprits with
// ground-truth accuracy (the trace carries the telemetry needed for both).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "control/analysis_program.h"
#include "control/register_records.h"
#include "ground/ground_truth.h"
#include "ground/metrics.h"
#include "wire/trace_io.h"

namespace {

double arg_double(int argc, char** argv, const char* name, double dflt) {
  for (int i = 2; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return std::atof(argv[i + 1]);
  }
  return dflt;
}

bool arg_flag(int argc, char** argv, const char* name) {
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return true;
  }
  return false;
}

const char* arg_str(int argc, char** argv, const char* name,
                    const char* dflt) {
  for (int i = 2; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return argv[i + 1];
  }
  return dflt;
}

void print_counts(const char* title, const pq::core::FlowCounts& counts,
                  std::size_t top) {
  std::printf("\n%s (%zu flows):\n", title, counts.size());
  for (const auto& [flow, n] : pq::core::top_k_flows(counts, top)) {
    std::printf("  %-44s %10.1f\n", pq::to_string(flow).c_str(), n);
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pq;
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: pq_replay <trace.pqt> [--victim worst|<id>] "
                 "[--top K] [--alpha A] [--k K] [--T N] [--m0 M] "
                 "[--salvage] [--save-records out.pqr]\n");
    return 2;
  }

  std::vector<wire::TelemetryRecord> records;
  try {
    records = wire::read_trace_file(argv[1]);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "cannot read %s: %s\n", argv[1], e.what());
    return 1;
  }
  if (records.empty()) {
    std::fprintf(stderr, "trace is empty\n");
    return 1;
  }

  core::PipelineConfig cfg;
  cfg.windows.m0 = static_cast<std::uint32_t>(
      arg_double(argc, argv, "--m0", 6));
  cfg.windows.alpha = static_cast<std::uint32_t>(
      arg_double(argc, argv, "--alpha", 2));
  cfg.windows.k =
      static_cast<std::uint32_t>(arg_double(argc, argv, "--k", 12));
  cfg.windows.num_windows =
      static_cast<std::uint32_t>(arg_double(argc, argv, "--T", 4));
  std::uint32_t max_depth = 0;
  for (const auto& r : records) {
    max_depth = std::max(max_depth, r.enq_qdepth + bytes_to_cells(r.size_bytes));
  }
  cfg.monitor.max_depth_cells = std::max(1024u, max_depth);

  core::PrintQueuePipeline pipeline(cfg);
  control::AnalysisConfig acfg;
  acfg.salvage_stale_cells = arg_flag(argc, argv, "--salvage");
  control::AnalysisProgram analysis(pipeline, acfg);

  // Replay the egress stream (records are the stream, sorted by dequeue).
  ground::GroundTruth truth(records);
  const std::uint32_t egress_port = truth.records_by_deq().front().egress_port;
  pipeline.enable_port(egress_port);
  for (const auto& r : truth.records_by_deq()) {
    sim::EgressContext ctx;
    ctx.flow = r.flow;
    ctx.egress_port = r.egress_port;
    ctx.size_bytes = r.size_bytes;
    ctx.packet_cells = static_cast<std::uint16_t>(
        bytes_to_cells(r.size_bytes));
    ctx.enq_qdepth = r.enq_qdepth;
    ctx.enq_timestamp = r.enq_timestamp;
    ctx.deq_timedelta = r.deq_timedelta;
    ctx.packet_id = r.packet_id;
    pipeline.on_egress(ctx);
  }
  analysis.finalize(truth.records_by_deq().back().deq_timestamp() + 1);

  if (const char* out = arg_str(argc, argv, "--save-records", nullptr)) {
    control::write_records_file(out,
                                control::collect_records(pipeline, analysis));
    std::printf("register records saved to %s\n", out);
  }

  // Victim selection.
  const char* victim_arg = arg_str(argc, argv, "--victim", "worst");
  const wire::TelemetryRecord* victim = nullptr;
  if (std::strcmp(victim_arg, "worst") == 0) {
    for (const auto& r : records) {
      if (victim == nullptr || r.deq_timedelta > victim->deq_timedelta) {
        victim = &r;
      }
    }
  } else {
    const auto want = static_cast<std::uint64_t>(std::atoll(victim_arg));
    for (const auto& r : records) {
      if (r.packet_id == want) victim = &r;
    }
    if (victim == nullptr) {
      std::fprintf(stderr, "packet id %s not found\n", victim_arg);
      return 1;
    }
  }

  const auto top =
      static_cast<std::size_t>(arg_double(argc, argv, "--top", 8));
  std::printf("trace: %zu records over %.2f ms on port %u\n", records.size(),
              truth.records_by_deq().back().deq_timestamp() / 1e6,
              egress_port);
  std::printf("victim: %s, enq %.3f ms, queued %.1f us, depth %u cells\n",
              to_string(victim->flow).c_str(), victim->enq_timestamp / 1e6,
              victim->deq_timedelta / 1e3, victim->enq_qdepth);

  const Timestamp t1 = victim->enq_timestamp;
  const Timestamp t2 = victim->deq_timestamp();
  const auto prefix = *pipeline.port_prefix(egress_port);

  const auto direct = analysis.query_time_windows(prefix, t1, t2);
  print_counts("direct culprits", direct, top);
  const auto pr =
      ground::flow_count_accuracy(direct, truth.direct_culprits(t1, t2));
  std::printf("  [accuracy vs trace ground truth: P %.3f R %.3f]\n",
              pr.precision, pr.recall);

  const Timestamp regime = truth.regime_start(t1);
  print_counts("indirect culprits",
               analysis.query_time_windows(prefix, regime, t1), top);
  std::printf("  [congestion regime began %.1f us before the victim]\n",
              (t1 - regime) / 1e3);

  print_counts("original causes of the buildup (queue monitor)",
               core::culprit_counts(analysis.query_queue_monitor(prefix, t2)),
               top);
  return 0;
}
