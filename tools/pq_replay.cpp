// pq_replay — offline analysis of a collected trace: replay the egress
// stream through the PrintQueue data plane, then answer culprit queries.
//
// Usage:
//   pq_replay <trace.pqt> [--victim worst|<packet_id>] [--top K]
//             [--alpha A] [--k K] [--T N] [--m0 M] [--salvage]
//             [--threads N] [--batch N] [--pin-threads]
//             [--save-records out.pqr]
//             [--archive-dir dir] [--archive-fsync none|segment|block]
//             [--archive-segment-bytes N] [--archive-format 1|2]
//             [--metrics-out metrics.json] [--metrics-prom metrics.prom]
//             [--simd auto|avx2|scalar] [--print-simd]
//
// Multi-port traces are replayed through one PortPipeline shard per egress
// port; `--threads N` drains the shards on a worker pool and `--batch N`
// (default 256) feeds each shard in PacketBatch chunks through the batched
// hot path (results are byte-identical for any N and any batch size —
// see docs/ARCHITECTURE.md §8/§10; `--batch 1` is the scalar oracle).
// `--pin-threads` pins each worker to a CPU round-robin (best effort; the
// effective placement lands in --metrics-out as timing-tagged gauges and
// never affects results).
// `--archive-dir` additionally streams every shard's telemetry into a
// crash-safe pq::store archive (docs/STORAGE.md) that pq_query can answer
// the same culprit queries from after the process is gone.
// Prints the victim's direct, indirect, and original culprits with
// ground-truth accuracy against the victim port's records.
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/simd/dispatch.h"
#include "common/thread_pin.h"
#include "control/metrics_export.h"
#include "control/register_records.h"
#include "control/sharded_analysis.h"
#include "ground/ground_truth.h"
#include "ground/metrics.h"
#include "store/archive.h"
#include "wire/trace_io.h"

namespace {

double arg_double(int argc, char** argv, const char* name, double dflt) {
  for (int i = 2; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return std::atof(argv[i + 1]);
  }
  return dflt;
}

bool arg_flag(int argc, char** argv, const char* name) {
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return true;
  }
  return false;
}

const char* arg_str(int argc, char** argv, const char* name,
                    const char* dflt) {
  for (int i = 2; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return argv[i + 1];
  }
  return dflt;
}

void print_counts(const char* title, const pq::core::FlowCounts& counts,
                  std::size_t top) {
  std::printf("\n%s (%zu flows):\n", title, counts.size());
  for (const auto& [flow, n] : pq::core::top_k_flows(counts, top)) {
    std::printf("  %-44s %10.1f\n", pq::to_string(flow).c_str(), n);
  }
}

pq::sim::EgressContext to_context(const pq::wire::TelemetryRecord& r) {
  pq::sim::EgressContext ctx;
  ctx.flow = r.flow;
  ctx.egress_port = r.egress_port;
  ctx.size_bytes = r.size_bytes;
  ctx.packet_cells =
      static_cast<std::uint16_t>(pq::bytes_to_cells(r.size_bytes));
  ctx.enq_qdepth = r.enq_qdepth;
  ctx.enq_timestamp = r.enq_timestamp;
  ctx.deq_timedelta = r.deq_timedelta;
  ctx.packet_id = r.packet_id;
  return ctx;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pq;
  // SIMD dispatch resolves before any engine object exists; --print-simd is
  // a bare probe (no trace needed), so it is handled ahead of usage checks.
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--print-simd") == 0) {
      std::printf("compiled: scalar%s\n",
                  simd::compiled(simd::Level::kAvx2) ? " avx2" : "");
      std::printf("cpu: %s\n", simd::cpu_supports(simd::Level::kAvx2)
                                    ? "avx2"
                                    : "scalar");
      std::printf("landed: %s\n", simd::to_string(simd::configure()));
      return 0;
    }
  }
  if (const char* req = arg_str(argc, argv, "--simd", nullptr)) {
    const auto parsed = simd::parse_request(req);
    if (!parsed) {
      std::fprintf(stderr, "unknown --simd '%s' (auto|avx2|scalar)\n", req);
      return 2;
    }
    simd::configure(*parsed);
  }
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: pq_replay <trace.pqt> [--victim worst|<id>] "
                 "[--top K] [--alpha A] [--k K] [--T N] [--m0 M] "
                 "[--salvage] [--threads N] [--batch N] [--pin-threads] "
                 "[--save-records out.pqr] [--archive-dir dir] "
                 "[--archive-fsync none|segment|block] "
                 "[--archive-segment-bytes N] [--archive-format 1|2] "
                 "[--metrics-out out.json] [--metrics-prom out.prom] "
                 "[--simd auto|avx2|scalar] [--print-simd]\n");
    return 2;
  }

  std::vector<wire::TelemetryRecord> records;
  try {
    records = wire::read_trace_file(argv[1]);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "cannot read %s: %s\n", argv[1], e.what());
    return 1;
  }
  if (records.empty()) {
    std::fprintf(stderr, "trace is empty\n");
    return 1;
  }

  core::PipelineConfig cfg;
  cfg.windows.m0 = static_cast<std::uint32_t>(
      arg_double(argc, argv, "--m0", 6));
  cfg.windows.alpha = static_cast<std::uint32_t>(
      arg_double(argc, argv, "--alpha", 2));
  cfg.windows.k =
      static_cast<std::uint32_t>(arg_double(argc, argv, "--k", 12));
  cfg.windows.num_windows =
      static_cast<std::uint32_t>(arg_double(argc, argv, "--T", 4));
  std::uint32_t max_depth = 0;
  for (const auto& r : records) {
    max_depth = std::max(max_depth, r.enq_qdepth + bytes_to_cells(r.size_bytes));
  }
  cfg.monitor.max_depth_cells = std::max(1024u, max_depth);

  // One shard per egress port present in the trace; per-shard streams keep
  // the global dequeue order restricted to that port.
  ground::GroundTruth truth(records);
  core::ShardedPipeline pipeline(cfg);
  std::vector<std::vector<wire::TelemetryRecord>> shard_records;
  for (const auto& r : truth.records_by_deq()) {
    const std::uint32_t prefix = pipeline.enable_port(r.egress_port);
    if (prefix >= shard_records.size()) shard_records.resize(prefix + 1);
    shard_records[prefix].push_back(r);
  }

  control::AnalysisConfig acfg;
  acfg.salvage_stale_cells = arg_flag(argc, argv, "--salvage");
  control::ShardedAnalysis analysis(pipeline, acfg);

  // Durable telemetry archive: one writer per shard, installed as the
  // shard program's sink before any packet is replayed.
  std::optional<store::Archive> archive;
  if (const char* dir = arg_str(argc, argv, "--archive-dir", nullptr)) {
    store::ArchiveOptions aopts;
    aopts.dir = dir;
    aopts.segment_bytes = static_cast<std::uint64_t>(arg_double(
        argc, argv, "--archive-segment-bytes",
        static_cast<double>(aopts.segment_bytes)));
    aopts.format_version = static_cast<std::uint16_t>(arg_double(
        argc, argv, "--archive-format",
        static_cast<double>(aopts.format_version)));
    const char* fsync = arg_str(argc, argv, "--archive-fsync", "none");
    if (std::strcmp(fsync, "block") == 0) {
      aopts.fsync = store::FsyncPolicy::kPerBlock;
    } else if (std::strcmp(fsync, "segment") == 0) {
      aopts.fsync = store::FsyncPolicy::kPerSegment;
    } else if (std::strcmp(fsync, "none") == 0) {
      aopts.fsync = store::FsyncPolicy::kNone;
    } else {
      std::fprintf(stderr, "unknown --archive-fsync '%s'\n", fsync);
      return 2;
    }
    try {
      archive.emplace(aopts);
      archive->attach(pipeline, analysis);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "cannot open archive %s: %s\n", dir, e.what());
      return 1;
    }
  }

  const auto threads = std::max(
      1u, static_cast<unsigned>(arg_double(argc, argv, "--threads", 1)));
  const auto batch = std::max(
      1u, static_cast<unsigned>(arg_double(argc, argv, "--batch", 256)));
  const bool pin_threads = arg_flag(argc, argv, "--pin-threads");
  const unsigned workers = std::min<unsigned>(
      threads, static_cast<unsigned>(pipeline.num_shards()));
  std::vector<int> worker_cpus(workers, -1);
  std::atomic<std::uint32_t> next{0};
  auto replay_shards = [&](unsigned worker_index) {
    if (pin_threads) {
      worker_cpus[worker_index] = pin_current_thread(worker_index);
    }
    for (std::uint32_t s = next.fetch_add(1); s < pipeline.num_shards();
         s = next.fetch_add(1)) {
      auto& shard = pipeline.shard(s);
      if (batch <= 1) {
        // The scalar oracle path: one on_egress per record.
        for (const auto& r : shard_records[s]) shard.on_egress(to_context(r));
      } else {
        sim::PacketBatch pb;
        pb.reserve(batch);
        for (const auto& r : shard_records[s]) {
          pb.push(to_context(r));
          if (pb.size() >= batch) {
            shard.on_egress_batch(pb);
            pb.clear();
          }
        }
        if (!pb.empty()) shard.on_egress_batch(pb);
      }
      analysis.program(s).finalize(
          shard_records[s].back().deq_timestamp() + 1);
    }
  };
  if (workers == 1) {
    replay_shards(0);
  } else {
    std::vector<std::thread> pool;
    for (unsigned t = 0; t < workers; ++t) {
      pool.emplace_back(replay_shards, t);
    }
    for (auto& t : pool) t.join();
  }

  if (archive) {
    archive->close();
    const auto s = archive->stats();
    std::printf("archive: %llu blocks / %llu bytes in %llu segment%s "
                "written to %s (%llu dropped)\n",
                static_cast<unsigned long long>(s.blocks_appended),
                static_cast<unsigned long long>(s.bytes_appended),
                static_cast<unsigned long long>(s.segments_closed),
                s.segments_closed == 1 ? "" : "s",
                arg_str(argc, argv, "--archive-dir", ""),
                static_cast<unsigned long long>(s.blocks_dropped));
  }

  // Victim selection.
  const char* victim_arg = arg_str(argc, argv, "--victim", "worst");
  const wire::TelemetryRecord* victim = nullptr;
  if (std::strcmp(victim_arg, "worst") == 0) {
    for (const auto& r : records) {
      if (victim == nullptr || r.deq_timedelta > victim->deq_timedelta) {
        victim = &r;
      }
    }
  } else {
    const auto want = static_cast<std::uint64_t>(std::atoll(victim_arg));
    for (const auto& r : records) {
      if (r.packet_id == want) victim = &r;
    }
    if (victim == nullptr) {
      std::fprintf(stderr, "packet id %s not found\n", victim_arg);
      return 1;
    }
  }
  const std::uint32_t egress_port = victim->egress_port;
  const auto prefix = *pipeline.port_prefix(egress_port);

  if (const char* out = arg_str(argc, argv, "--save-records", nullptr)) {
    control::write_records_file(
        out, control::collect_records(pipeline.shard(prefix).pipeline(),
                                      analysis.program(prefix)));
    std::printf("register records saved to %s (port %u)\n", out, egress_port);
  }

  // Ground truth for accuracy is the victim port's own queue.
  ground::GroundTruth port_truth(shard_records[prefix]);

  const auto top =
      static_cast<std::size_t>(arg_double(argc, argv, "--top", 8));
  std::printf("simd: %s (requested %s)\n",
              simd::to_string(simd::active_level()),
              simd::to_string(simd::active_request()));
  std::printf("trace: %zu records over %.2f ms on %zu port%s "
              "(%u threads)\n",
              records.size(),
              static_cast<double>(truth.records_by_deq().back().deq_timestamp()) / 1e6,
              pipeline.num_shards(), pipeline.num_shards() == 1 ? "" : "s",
              workers);
  std::printf("victim: %s on port %u, enq %.3f ms, queued %.1f us, "
              "depth %u cells\n",
              to_string(victim->flow).c_str(), egress_port,
              static_cast<double>(victim->enq_timestamp) / 1e6,
              static_cast<double>(victim->deq_timedelta) / 1e3,
              victim->enq_qdepth);

  const Timestamp t1 = victim->enq_timestamp;
  const Timestamp t2 = victim->deq_timestamp();

  const auto direct = analysis.query_time_windows(prefix, t1, t2);
  print_counts("direct culprits", direct, top);
  const auto pr =
      ground::flow_count_accuracy(direct, port_truth.direct_culprits(t1, t2));
  std::printf("  [accuracy vs trace ground truth: P %.3f R %.3f]\n",
              pr.precision, pr.recall);

  const Timestamp regime = port_truth.regime_start(t1);
  print_counts("indirect culprits",
               analysis.query_time_windows(prefix, regime, t1), top);
  std::printf("  [congestion regime began %.1f us before the victim]\n",
              static_cast<double>(t1 - regime) / 1e3);

  print_counts("original causes of the buildup (queue monitor)",
               core::culprit_counts(analysis.query_queue_monitor(prefix, t2)),
               top);

  // Serialize the run's metrics last so the query-latency histogram covers
  // every query issued above.
  const char* metrics_json = arg_str(argc, argv, "--metrics-out", nullptr);
  const char* metrics_prom = arg_str(argc, argv, "--metrics-prom", nullptr);
  if (metrics_json != nullptr || metrics_prom != nullptr) {
    auto metrics = control::collect_replay_metrics(pipeline, analysis);
    if (archive) store::export_writer_metrics(metrics, archive->stats());
    // Worker placement is scheduling metadata: timing-tagged, so it never
    // enters the deterministic (IncludeTimings::kNo) view.
    if (pin_threads) {
      std::uint64_t pinned = 0;
      for (unsigned t = 0; t < workers; ++t) {
        if (worker_cpus[t] < 0) continue;
        ++pinned;
        metrics
            .gauge("pq_replay_worker" + std::to_string(t) + "_cpu",
                   obs::GaugeMode::kMax, "effective CPU of replay worker",
                   /*timing=*/true)
            .set(static_cast<std::uint64_t>(worker_cpus[t]));
      }
      metrics
          .gauge("pq_replay_pinned_workers", obs::GaugeMode::kMax,
                 "replay workers successfully pinned", /*timing=*/true)
          .set(pinned);
    }
    auto write_file = [](const char* path, const std::string& body) {
      std::FILE* f = std::fopen(path, "w");
      if (f == nullptr) {
        std::fprintf(stderr, "cannot write %s\n", path);
        return false;
      }
      std::fwrite(body.data(), 1, body.size(), f);
      std::fclose(f);
      return true;
    };
    if (metrics_json != nullptr && write_file(metrics_json, metrics.to_json())) {
      std::printf("metrics written to %s\n", metrics_json);
    }
    if (metrics_prom != nullptr &&
        write_file(metrics_prom, metrics.to_prometheus())) {
      std::printf("metrics written to %s\n", metrics_prom);
    }
  }
  return 0;
}
