// pq_compact — offline compaction of a pq::store archive directory.
//
// Rewrites cold, footer-clean segments in place: delta-recodes their
// blocks to the v2 format (or back to raw v1 with --format 1) and drops
// superseded calibration records, without renumbering segments or changing
// what full-horizon queries answer (src/store/compactor.h documents the
// four invariants). Safe to run on an archive a crash left torn: damaged
// chains are abandoned at the first bad segment, never "healed".
//
// Usage:
//   pq_compact <archive-dir> [--port P] [--keep-newest N]
//              [--keep-calibrations] [--format 1|2] [--min-saved BYTES]
//
// Exit codes: 0 ok (including nothing to do), 1 unreadable directory,
// 2 bad usage.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>

#include "store/compactor.h"

int main(int argc, char** argv) {
  using namespace pq;
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: pq_compact <archive-dir> [--port P] "
                 "[--keep-newest N] [--keep-calibrations] [--format 1|2] "
                 "[--min-saved BYTES]\n");
    return 2;
  }
  store::CompactionPolicy policy;
  bool have_port = false;
  std::uint32_t port = 0;
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--keep-calibrations") == 0) {
      policy.drop_superseded_calibrations = false;
    } else if (std::strcmp(argv[i], "--port") == 0 && i + 1 < argc) {
      have_port = true;
      port = static_cast<std::uint32_t>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--keep-newest") == 0 && i + 1 < argc) {
      policy.keep_newest_segments =
          static_cast<std::uint32_t>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--format") == 0 && i + 1 < argc) {
      policy.output_version = static_cast<std::uint16_t>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--min-saved") == 0 && i + 1 < argc) {
      policy.min_bytes_saved =
          static_cast<std::uint64_t>(std::atoll(argv[++i]));
    } else {
      std::fprintf(stderr, "unknown argument '%s'\n", argv[i]);
      return 2;
    }
  }
  if (policy.output_version != store::kFormatVersionV1 &&
      policy.output_version != store::kFormatVersionV2) {
    std::fprintf(stderr, "--format must be 1 or 2\n");
    return 2;
  }
  std::error_code ec;
  if (!std::filesystem::is_directory(argv[1], ec)) {
    std::fprintf(stderr, "cannot read %s\n", argv[1]);
    return 1;
  }

  const store::CompactionStats s =
      have_port ? store::compact_port_chain(argv[1], port, policy)
                : store::compact_archive(argv[1], policy);
  std::printf("compaction: %llu segment(s) examined, %llu rewritten, "
              "%llu skipped, %llu damaged\n",
              static_cast<unsigned long long>(s.segments_examined),
              static_cast<unsigned long long>(s.segments_rewritten),
              static_cast<unsigned long long>(s.segments_skipped),
              static_cast<unsigned long long>(s.segments_skipped_damaged));
  if (s.segments_rewritten > 0) {
    std::printf("  %llu -> %llu byte(s) (%.2fx), %llu calibration(s) "
                "dropped\n",
                static_cast<unsigned long long>(s.bytes_before),
                static_cast<unsigned long long>(s.bytes_after),
                s.bytes_after > 0 ? static_cast<double>(s.bytes_before) /
                                        static_cast<double>(s.bytes_after)
                                  : 0.0,
                static_cast<unsigned long long>(s.calibrations_dropped));
  }
  return 0;
}
